#include "stream/pipeline.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace tfd::stream {

namespace {

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

// Section tags of a pipeline snapshot ("PIPE", "SHRD", "DETC" as
// little-endian fourccs) and their payload versions. PIPE/SHRD moved
// to v2 when the single held reorder bin became a ring of up to
// reorder_window_bins held bins (and PIPE grew the quarantine
// counters); DETC moved to v2 when the detector grew the drift
// monitor / recalibration state block; PIPE moved to v3 when the
// metrics block grew records_dropped_bad_od. Older versions are
// rejected as unsupported_version rather than guessed at.
constexpr std::uint32_t kTagPipeline = 0x45504950u;
constexpr std::uint32_t kTagShards = 0x44524853u;
constexpr std::uint32_t kTagDetector = 0x43544544u;
constexpr std::uint16_t kVersionPipeline = 3;
constexpr std::uint16_t kVersionShards = 2;
constexpr std::uint16_t kVersionDetector = 2;

/// Hard cap on the reorder ring: W held bins cost W open accumulators
/// of memory and W bins of verdict latency; anything past this is a
/// misconfiguration, not a workload.
constexpr std::size_t kMaxReorderWindow = 64;

}  // namespace

stream_pipeline::stream_pipeline(const net::topology& topo,
                                 pipeline_options opts)
    : resolver_(topo),
      opts_(opts),
      shards_(topo.od_count(), opts.shards),
      detector_(static_cast<std::size_t>(topo.od_count()), opts.online) {
    if (opts.bin_us == 0)
        throw std::invalid_argument("stream_pipeline: bin_us must be > 0");
    if (opts.reorder_window_bins > kMaxReorderWindow)
        throw std::invalid_argument(
            "stream_pipeline: reorder_window_bins must be <= 64");
    if (opts.reorder_window_bins > opts.max_gap_bins)
        throw std::invalid_argument(
            "stream_pipeline: reorder_window_bins must be <= max_gap_bins");
    if (opts.dist && opts.reorder_window_bins > 0)
        throw std::invalid_argument(
            "stream_pipeline: a dist backend cannot be combined with "
            "reorder_window_bins (the held-bin ring is in-process state)");
}

void stream_pipeline::emit_bin(od_shard_set& shards, std::size_t bin) {
    const std::uint64_t t0 = now_ns();
    // With a dist backend the open bin's cells live in the worker
    // processes; the barrier merge fills bin_statistics with exactly
    // the bits the local harvest would have. (Reorder is excluded with
    // dist, so `shards` here is always the cursor's shards_.)
    if (opts_.dist)
        opts_.dist->harvest(scratch_.stats);
    else
        shards.harvest(scratch_.stats);
    scratch_.stats.bin = bin;
    if (scratch_.stats.records == 0) ++metrics_.empty_bins;
    scratch_.verdict = detector_.push(scratch_.stats.snapshot);
    const std::uint64_t dt = now_ns() - t0;
    metrics_.bin_close_ns += dt;
    metrics_.max_bin_close_ns = std::max(metrics_.max_bin_close_ns, dt);
    if (opts_.timers && opts_.timers->bin_close)
        opts_.timers->bin_close->record_ns(dt);
    ++metrics_.bins_emitted;
    if (scratch_.verdict.anomalous) ++metrics_.anomalies;
    last_emitted_bin_ = bin;
    any_emitted_ = true;
    if (callback_) callback_(scratch_);
}

// Every close below advances the cursor (or clears the open flag)
// BEFORE emit_bin runs, so the state an on_bin observer sees is always
// resumable: "each bin up to and including the observed one is scored,
// the next bin is open". save_checkpoint() called from the observer
// therefore captures a consistent cut — a restored pipeline never
// re-emits the observed bin.

void stream_pipeline::close_bin() {
    // Only valid when nothing is held below the cursor: every bin under
    // the new cursor position has been emitted.
    const std::size_t closing = current_bin_;
    current_bin_ = closing + 1;
    open_floor_ = current_bin_;
    emit_bin(shards_, closing);
}

void stream_pipeline::advance_to(std::size_t bin) {
    // Emit every bin up to (excluding) `bin`: the open one, then empty
    // gap bins, keeping the detector's row-per-bin time base intact.
    while (bin_open_ && current_bin_ < bin) close_bin();
    current_bin_ = bin;
}

od_shard_set stream_pipeline::acquire_set() {
    if (!set_pool_.empty()) {
        od_shard_set set = std::move(set_pool_.back());
        set_pool_.pop_back();
        return set;
    }
    return od_shard_set(shards_.od_count(), opts_.shards);
}

od_shard_set* stream_pipeline::find_held(std::size_t bin) {
    for (held_bin& h : held_)
        if (h.bin == bin) return &h.set;
    return nullptr;
}

od_shard_set* stream_pipeline::retro_open(std::size_t bin) {
    const auto it = std::lower_bound(
        held_.begin(), held_.end(), bin,
        [](const held_bin& h, std::size_t b) { return h.bin < b; });
    const auto inserted = held_.insert(it, held_bin{bin, acquire_set()});
    open_floor_ = std::min(open_floor_, bin);
    return &inserted->set;
}

void stream_pipeline::emit_pending_below(std::size_t limit) {
    // Emit, in ascending bin order, every pending bin below `limit`:
    // held accumulators, and the implicit empty gap bins between them,
    // so the detector's row-per-bin time base stays gap-complete. The
    // floor is advanced and the ring popped BEFORE each emission, so an
    // on_bin observer always sees a resumable cut (see close_bin).
    while (open_floor_ < limit && open_floor_ < current_bin_) {
        const std::size_t bin = open_floor_;
        open_floor_ = bin + 1;
        od_shard_set set = (!held_.empty() && held_.front().bin == bin)
                               ? [&] {
                                     od_shard_set s =
                                         std::move(held_.front().set);
                                     held_.erase(held_.begin());
                                     return s;
                                 }()
                               : acquire_set();
        emit_bin(set, bin);
        set_pool_.push_back(std::move(set));
    }
}

void stream_pipeline::reorder_advance(std::size_t bin) {
    // The cursor moves forward to `bin`; the window now covers
    // [bin - W, bin]. Everything that slid below it is emitted
    // (ascending, gap-complete); the cursor's old bin either joins the
    // held ring or — when the jump is wider than the window — is
    // emitted along with the empty bins bridging it to the window edge.
    const std::size_t w = opts_.reorder_window_bins;
    const std::size_t low = bin > w ? bin - w : 0;
    if (current_bin_ < low) {
        emit_pending_below(current_bin_);
        close_bin();
        while (current_bin_ < low) close_bin();
        current_bin_ = bin;
        // Bins [low, bin) stay implicit: straggler-eligible, emitted
        // as empty when the window slides past them.
    } else {
        emit_pending_below(low);
        held_.push_back(held_bin{current_bin_, std::move(shards_)});
        shards_ = acquire_set();
        current_bin_ = bin;
    }
}

void stream_pipeline::push(std::span<const flow::flow_record> records) {
    if (records.empty()) return;
    const bool reorder = opts_.reorder_window_bins > 0;
    // The accumulation clock covers resolve + routing + shard work, so
    // records_per_second() reflects the full per-record ingest cost.
    // The same clock (bin closures excluded) feeds the per-push
    // accumulate stage histogram when one is attached.
    std::uint64_t push_accum_ns = 0;
    std::uint64_t t0 = now_ns();

    // Process maximal same-bin runs so shard fan-out happens once per
    // run, not once per record. All per-record accounting (records_in,
    // resolver drops) is at run granularity and happens AFTER any bin
    // closes the run triggers: at every on_bin callback the counters
    // describe exactly the records consumed so far, so
    // metrics().records_in doubles as the drained stream position a
    // checkpoint needs for exact resume.
    std::size_t i = 0;
    const std::size_t n = records.size();
    while (i < n) {
        const std::size_t bin = flow::bin_index(records[i].first_us, opts_.bin_us);
        std::size_t j = i + 1;
        while (j < n &&
               flow::bin_index(records[j].first_us, opts_.bin_us) == bin)
            ++j;
        const auto run = records.subspan(i, j - i);
        // A record is late when its bin has already been scored: below
        // the reorder window (or, with reorder off, behind the
        // cursor), or — after finish()/run() closed the stream — at or
        // below the last emitted bin. Late records cannot be replayed
        // into the model. Only resolvable records count as late;
        // unresolvable ones are already in resolver_drops, so the
        // counters partition records_in exactly.
        // A straggler lands in a held bin of the reorder ring — or,
        // when its bin is inside the window but holds no accumulator
        // yet and was provably never scored (an implicit empty gap,
        // stream start, a time-base reset), retroactively opens one:
        // "late" must mean "already scored", not merely "behind the
        // cursor".
        // "Provably never scored": nothing emitted yet, the last
        // verdict is below this bin (stream start, forward time-base
        // reset), or the last verdict is unreachably far above it
        // (backward time-base reset started a new era; bin indices are
        // era-local, so a bin more than max_gap_bins below every scored
        // bin has no verdict in this era).
        od_shard_set* straggler_set = nullptr;
        if (reorder && bin_open_ && bin < current_bin_ &&
            current_bin_ - bin <= opts_.reorder_window_bins) {
            straggler_set = find_held(bin);
            if (!straggler_set &&
                (!any_emitted_ || last_emitted_bin_ < bin ||
                 last_emitted_bin_ - bin > opts_.max_gap_bins))
                straggler_set = retro_open(bin);
        }
        const bool straggler = straggler_set != nullptr;
        const bool late =
            !straggler &&
            (bin_open_ ? bin < current_bin_
                       : metrics_.bins_emitted > 0 && bin <= current_bin_);
        if (late) {
            // A backward jump beyond max_gap_bins is a time-base
            // discontinuity, the mirror of the forward case below: one
            // corrupt far-future timestamp must not poison current_bin_
            // so badly that the entire remaining (sane) feed gets
            // late-dropped. Resync instead of dropping.
            if (current_bin_ - bin > opts_.max_gap_bins) {
                const std::uint64_t dt = now_ns() - t0;
                metrics_.accumulate_ns += dt;
                push_accum_ns += dt;
                if (reorder) emit_pending_below(current_bin_);
                ++metrics_.time_base_resets;
                const std::size_t closing = current_bin_;
                const bool had_open = bin_open_;
                if (lifecycle_cb_) {
                    lifecycle_event ev;
                    ev.type = lifecycle_event::kind::time_base_reset;
                    ev.from_bin = closing;
                    ev.to_bin = bin;
                    lifecycle_cb_(ev);
                }
                current_bin_ = bin;
                open_floor_ = bin;
                bin_open_ = true;
                if (had_open) emit_bin(shards_, closing);
                t0 = now_ns();
            } else {
                resolver_.resolve_batch(run, od_scratch_,
                                        &metrics_.resolver_drops);
                for (std::size_t k = 0; k < run.size(); ++k)
                    if (od_scratch_[k] >= 0) ++metrics_.late_records;
                metrics_.records_in += run.size();
                i = j;
                continue;
            }
        }
        if (!bin_open_) {
            current_bin_ = bin;
            open_floor_ = bin;
            bin_open_ = true;
        } else if (bin > current_bin_) {
            // Bin closures are timed separately (bin_close_ns), so pause
            // the accumulation clock around them.
            const std::uint64_t dt = now_ns() - t0;
            metrics_.accumulate_ns += dt;
            push_accum_ns += dt;
            if (bin - current_bin_ > opts_.max_gap_bins) {
                // Time-base discontinuity: don't spin through an absurd
                // number of empty harvests (see pipeline_options).
                if (reorder) emit_pending_below(current_bin_);
                ++metrics_.time_base_resets;
                const std::size_t closing = current_bin_;
                if (lifecycle_cb_) {
                    lifecycle_event ev;
                    ev.type = lifecycle_event::kind::time_base_reset;
                    ev.from_bin = closing;
                    ev.to_bin = bin;
                    lifecycle_cb_(ev);
                }
                current_bin_ = bin;
                open_floor_ = bin;
                emit_bin(shards_, closing);
            } else if (reorder) {
                reorder_advance(bin);
            } else {
                advance_to(bin);
            }
            t0 = now_ns();
        }
        resolver_.resolve_batch(run, od_scratch_, &metrics_.resolver_drops);
        metrics_.records_in += run.size();
        const std::span<const int> run_ods(od_scratch_.data(), run.size());
        std::uint64_t got = 0;
        if (opts_.dist && !straggler) {
            dist_backend& d = *opts_.dist;
            const std::uint64_t before = d.pending_records();
            const std::uint64_t bad0 = d.records_dropped_bad_od();
            d.accumulate(run, run_ods);
            got = d.pending_records() - before;
            metrics_.records_dropped_bad_od +=
                d.records_dropped_bad_od() - bad0;
        } else {
            od_shard_set& target = straggler ? *straggler_set : shards_;
            const std::uint64_t before = target.pending_records();
            const std::uint64_t bad0 = target.records_dropped_bad_od();
            target.accumulate(run, run_ods);
            got = target.pending_records() - before;
            metrics_.records_dropped_bad_od +=
                target.records_dropped_bad_od() - bad0;
        }
        metrics_.records_accumulated += got;
        if (straggler) metrics_.records_reordered += got;
        i = j;
    }
    const std::uint64_t dt = now_ns() - t0;
    metrics_.accumulate_ns += dt;
    push_accum_ns += dt;
    if (opts_.timers && opts_.timers->accumulate)
        opts_.timers->accumulate->record_ns(push_accum_ns);
}

void stream_pipeline::finish() {
    if (bin_open_ && opts_.reorder_window_bins > 0)
        emit_pending_below(current_bin_);
    if (!bin_open_) return;
    // Clear the open flag before emitting so an observer (e.g. a
    // checkpoint) sees the finished state: the emitted bin is the last,
    // and any later record for it is late.
    bin_open_ = false;
    emit_bin(shards_, current_bin_);
}

std::size_t stream_pipeline::run(flow_codec_reader& reader) {
    // The reader's quarantine counters are cumulative per reader; fold
    // only this run's delta into the pipeline metrics (readers may be
    // reused, pipelines may drain several readers).
    const quarantine_stats q0 = reader.quarantine();
    bounded_queue<std::vector<flow::flow_record>> queue(opts_.queue_frames);
    // Queue depth + one in flight on each side bounds how many buffers
    // can circulate, so the ring never needs to hold more than that.
    frame_ring ring(opts_.queue_frames + 2);
    std::exception_ptr producer_error;

    // The decode stage histogram is fed from the producer thread; the
    // histogram's buckets are atomics, so this is scrape-safe.
    obs::latency_histogram* decode_timer =
        opts_.timers ? opts_.timers->decode : nullptr;
    std::thread producer([&] {
        try {
            std::vector<flow::flow_record> frame = ring.acquire();
            for (;;) {
                bool got;
                {
                    obs::stage_span span(decode_timer);
                    got = reader.next_frame(frame);
                }
                if (!got) break;
                if (!queue.push(std::move(frame))) break;
                frame = ring.acquire();
            }
        } catch (...) {
            producer_error = std::current_exception();
        }
        queue.close();
    });

    std::size_t frames = 0;
    std::exception_ptr consumer_error;
    try {
        while (auto frame = queue.pop()) {
            push(*frame);
            ring.release(std::move(*frame));
            ++frames;
        }
    } catch (...) {
        // push() (e.g. a throwing on_bin callback) must not leave the
        // producer blocked on a full queue with a joinable thread going
        // out of scope — that would be std::terminate.
        consumer_error = std::current_exception();
        queue.close();
    }
    producer.join();
    last_run_blocked_pushes_ = queue.blocked_pushes();
    metrics_.frames_reused += ring.reuses();
    const quarantine_stats& q1 = reader.quarantine();
    const std::uint64_t dq_frames =
        q1.frames_quarantined - q0.frames_quarantined;
    const std::uint64_t dq_records =
        q1.records_lost_corrupt - q0.records_lost_corrupt;
    const std::uint64_t dq_bytes =
        q1.resync_bytes_skipped - q0.resync_bytes_skipped;
    metrics_.frames_quarantined += dq_frames;
    metrics_.records_lost_corrupt += dq_records;
    metrics_.resync_bytes_skipped += dq_bytes;
    // Degraded-operation summaries for this run, emitted only when the
    // run actually degraded (zero-delta events would be noise). Summing
    // the deltas across every emitted event reproduces metrics()
    // exactly, which the reconciliation test relies on. Emitted even
    // when the drain is about to rethrow: the deltas are already folded
    // into metrics(), so the event stream must carry them too.
    if (lifecycle_cb_ && (dq_frames || dq_records || dq_bytes)) {
        lifecycle_event ev;
        ev.type = lifecycle_event::kind::quarantine;
        ev.frames_quarantined = dq_frames;
        ev.records_lost = dq_records;
        ev.resync_bytes = dq_bytes;
        lifecycle_cb_(ev);
    }
    if (lifecycle_cb_ && last_run_blocked_pushes_ > 0) {
        lifecycle_event ev;
        ev.type = lifecycle_event::kind::backpressure;
        ev.blocked_pushes = last_run_blocked_pushes_;
        ev.queue_high_watermark = queue.high_watermark();
        lifecycle_cb_(ev);
    }
    if (consumer_error) std::rethrow_exception(consumer_error);
    if (producer_error) std::rethrow_exception(producer_error);
    finish();
    return frames;
}

std::uint64_t stream_pipeline::config_fingerprint() const {
    io::wire_writer w;
    // Topology digest: OD attribution (and therefore every serialized
    // cell) depends on the PoP set, their address spaces, and the link
    // graph — topology construction is deterministic from these, so a
    // routing-relevant change always moves the digest even when the OD
    // count stays the same.
    const net::topology& topo = resolver_.topo();
    w.varint(topo.name().size());
    w.bytes({reinterpret_cast<const std::uint8_t*>(topo.name().data()),
             topo.name().size()});
    for (const net::pop& p : topo.pops()) {
        w.varint(p.name.size());
        w.bytes({reinterpret_cast<const std::uint8_t*>(p.name.data()),
                 p.name.size()});
        w.u32(p.address_space.network.value);
        w.varint(static_cast<std::uint64_t>(p.address_space.length));
    }
    for (const net::link& l : topo.links()) {
        w.varint(static_cast<std::uint64_t>(l.a));
        w.varint(static_cast<std::uint64_t>(l.b));
    }
    w.varint(static_cast<std::uint64_t>(shards_.od_count()));
    w.varint(shards_.shard_count());  // effective, not the 0 = auto knob
    w.varint(opts_.bin_us);
    w.varint(opts_.max_gap_bins);
    w.varint(opts_.reorder_window_bins);
    const core::online_options& o = opts_.online;
    w.varint(o.window);
    w.varint(o.warmup);
    w.varint(o.refit_interval);
    w.varint(o.rematerialize_every);
    w.varint(o.max_identified);
    w.varint(o.subspace.normal_dims);
    w.u8(o.subspace.center ? 1 : 0);
    w.u8(o.subspace.partial_fit ? 1 : 0);
    w.f64(o.alpha);
    // Recalibration policy: every knob changes the trajectory of a
    // drift-aware detector, so a snapshot must not restore across a
    // policy change. (Disabled policies all serialize identically.)
    const core::recalibration_options& rc = o.recalibration;
    w.u8(rc.enabled ? 1 : 0);
    if (rc.enabled) {
        w.varint(rc.relearn_bins);
        w.f64(rc.degraded_confidence);
        w.f64(rc.monitor.ph_delta);
        w.f64(rc.monitor.ph_lambda);
        w.varint(rc.monitor.min_shift_bins);
        w.varint(rc.monitor.watchdog_window);
        w.f64(rc.monitor.storm_rate);
    }
    return io::fnv1a64(w.data());
}

void stream_pipeline::save_state(io::snapshot_writer& snap) const {
    if (opts_.dist)
        throw std::logic_error(
            "stream_pipeline: save_state is not supported with a dist "
            "backend — the open bin lives in the worker processes, "
            "which checkpoint themselves (see src/dist/README.md)");
    {
        io::wire_writer w;
        w.varint(current_bin_);
        w.u8(bin_open_ ? 1 : 0);
        w.u8(any_emitted_ ? 1 : 0);
        w.varint(last_emitted_bin_);
        w.varint(open_floor_);
        const pipeline_metrics& m = metrics_;
        w.varint(m.records_in);
        w.varint(m.records_accumulated);
        w.varint(m.resolver_drops.unknown_ingress);
        w.varint(m.resolver_drops.unresolvable_egress);
        w.varint(m.late_records);
        w.varint(m.records_dropped_bad_od);
        w.varint(m.records_reordered);
        w.varint(m.bins_emitted);
        w.varint(m.empty_bins);
        w.varint(m.time_base_resets);
        w.varint(m.anomalies);
        w.varint(m.accumulate_ns);
        w.varint(m.bin_close_ns);
        w.varint(m.max_bin_close_ns);
        w.varint(m.frames_reused);
        w.varint(m.frames_quarantined);
        w.varint(m.records_lost_corrupt);
        w.varint(m.resync_bytes_skipped);
        snap.add_section(kTagPipeline, kVersionPipeline, w.take());
    }
    {
        io::wire_writer w;
        shards_.save(w);
        w.varint(held_.size());
        for (const held_bin& h : held_) {
            w.varint(h.bin);
            h.set.save(w);
        }
        snap.add_section(kTagShards, kVersionShards, w.take());
    }
    {
        io::wire_writer w;
        detector_.save(w);
        snap.add_section(kTagDetector, kVersionDetector, w.take());
    }
}

void stream_pipeline::restore_state(const io::snapshot_reader& snap) {
    if (opts_.dist)
        throw std::logic_error(
            "stream_pipeline: restore_state is not supported with a "
            "dist backend — the open bin lives in the worker processes");
    const auto expect_version = [&](std::uint32_t tag, std::uint16_t want,
                                    const char* name) {
        const std::uint16_t got = snap.section_version(tag);
        if (got != want)
            throw io::snapshot_error(
                io::snapshot_errc::unsupported_version,
                std::string(name) + " section version " +
                    std::to_string(got) + ", this build reads " +
                    std::to_string(want));
    };
    expect_version(kTagPipeline, kVersionPipeline, "pipeline");
    expect_version(kTagShards, kVersionShards, "shards");
    expect_version(kTagDetector, kVersionDetector, "detector");
    {
        io::wire_reader r = snap.section(kTagPipeline);
        current_bin_ = static_cast<std::size_t>(r.varint());
        bin_open_ = r.u8() != 0;
        any_emitted_ = r.u8() != 0;
        last_emitted_bin_ = static_cast<std::size_t>(r.varint());
        open_floor_ = static_cast<std::size_t>(r.varint());
        pipeline_metrics& m = metrics_;
        m.records_in = r.varint();
        m.records_accumulated = r.varint();
        m.resolver_drops.unknown_ingress =
            static_cast<std::size_t>(r.varint());
        m.resolver_drops.unresolvable_egress =
            static_cast<std::size_t>(r.varint());
        m.late_records = r.varint();
        m.records_dropped_bad_od = r.varint();
        m.records_reordered = r.varint();
        m.bins_emitted = r.varint();
        m.empty_bins = r.varint();
        m.time_base_resets = r.varint();
        m.anomalies = r.varint();
        m.accumulate_ns = r.varint();
        m.bin_close_ns = r.varint();
        m.max_bin_close_ns = r.varint();
        m.frames_reused = r.varint();
        m.frames_quarantined = r.varint();
        m.records_lost_corrupt = r.varint();
        m.resync_bytes_skipped = r.varint();
        r.expect_end();
    }
    {
        io::wire_reader r = snap.section(kTagShards);
        shards_.load(r);
        const std::size_t held = static_cast<std::size_t>(r.varint());
        if (held > opts_.reorder_window_bins)
            r.fail("stream_pipeline: snapshot holds more reorder bins "
                   "than this pipeline's window");
        held_.clear();
        held_.reserve(held);
        for (std::size_t i = 0; i < held; ++i) {
            const std::size_t bin = static_cast<std::size_t>(r.varint());
            if (!held_.empty() && bin <= held_.back().bin)
                r.fail("stream_pipeline: held reorder bins out of order");
            held_.push_back(held_bin{bin, acquire_set()});
            held_.back().set.load(r);
        }
        r.expect_end();
    }
    {
        io::wire_reader r = snap.section(kTagDetector);
        detector_.load(r);
        r.expect_end();
    }
}

}  // namespace tfd::stream
