#include "stream/pipeline.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <thread>

namespace tfd::stream {

namespace {

std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

stream_pipeline::stream_pipeline(const net::topology& topo,
                                 pipeline_options opts)
    : resolver_(topo),
      opts_(opts),
      shards_(topo.od_count(), opts.shards),
      detector_(static_cast<std::size_t>(topo.od_count()), opts.online) {
    if (opts.bin_us == 0)
        throw std::invalid_argument("stream_pipeline: bin_us must be > 0");
}

void stream_pipeline::close_bin() {
    const std::uint64_t t0 = now_ns();
    shards_.harvest(scratch_.stats);
    scratch_.stats.bin = current_bin_;
    if (scratch_.stats.records == 0) ++metrics_.empty_bins;
    scratch_.verdict = detector_.push(scratch_.stats.snapshot);
    const std::uint64_t dt = now_ns() - t0;
    metrics_.bin_close_ns += dt;
    metrics_.max_bin_close_ns = std::max(metrics_.max_bin_close_ns, dt);
    ++metrics_.bins_emitted;
    if (scratch_.verdict.anomalous) ++metrics_.anomalies;
    if (callback_) callback_(scratch_);
}

void stream_pipeline::advance_to(std::size_t bin) {
    // Emit every bin up to (excluding) `bin`: the open one, then empty
    // gap bins, keeping the detector's row-per-bin time base intact.
    while (bin_open_ && current_bin_ < bin) {
        close_bin();
        ++current_bin_;
    }
    current_bin_ = bin;
}

void stream_pipeline::push(std::span<const flow::flow_record> records) {
    if (records.empty()) return;
    metrics_.records_in += records.size();
    // The accumulation clock covers resolve + routing + shard work, so
    // records_per_second() reflects the full per-record ingest cost.
    std::uint64_t t0 = now_ns();
    resolver_.resolve_batch(records, od_scratch_, &metrics_.resolver_drops);

    // Accumulate maximal same-bin runs so shard fan-out happens once per
    // run, not once per record.
    std::size_t i = 0;
    const std::size_t n = records.size();
    while (i < n) {
        const std::size_t bin = flow::bin_index(records[i].first_us, opts_.bin_us);
        std::size_t j = i + 1;
        while (j < n &&
               flow::bin_index(records[j].first_us, opts_.bin_us) == bin)
            ++j;
        // A record is late when its bin has already been scored: below
        // the open bin, or — after finish()/run() closed the stream —
        // at or below the last emitted bin. Late records cannot be
        // replayed into the model. Only resolvable records count as
        // late; unresolvable ones are already in resolver_drops, so the
        // counters partition records_in exactly.
        const bool late = bin_open_
                              ? bin < current_bin_
                              : metrics_.bins_emitted > 0 && bin <= current_bin_;
        if (late) {
            // A backward jump beyond max_gap_bins is a time-base
            // discontinuity, the mirror of the forward case below: one
            // corrupt far-future timestamp must not poison current_bin_
            // so badly that the entire remaining (sane) feed gets
            // late-dropped. Resync instead of dropping.
            if (current_bin_ - bin > opts_.max_gap_bins) {
                metrics_.accumulate_ns += now_ns() - t0;
                if (bin_open_) close_bin();
                ++metrics_.time_base_resets;
                current_bin_ = bin;
                bin_open_ = true;
                t0 = now_ns();
            } else {
                for (std::size_t k = i; k < j; ++k)
                    if (od_scratch_[k] >= 0) ++metrics_.late_records;
                i = j;
                continue;
            }
        }
        if (!bin_open_) {
            current_bin_ = bin;
            bin_open_ = true;
        } else if (bin > current_bin_) {
            // Bin closures are timed separately (bin_close_ns), so pause
            // the accumulation clock around them.
            metrics_.accumulate_ns += now_ns() - t0;
            if (bin - current_bin_ > opts_.max_gap_bins) {
                // Time-base discontinuity: don't spin through an absurd
                // number of empty harvests (see pipeline_options).
                close_bin();
                ++metrics_.time_base_resets;
                current_bin_ = bin;
            } else {
                advance_to(bin);
            }
            t0 = now_ns();
        }
        const std::size_t before = shards_.pending_records();
        shards_.accumulate(records.subspan(i, j - i),
                           std::span(od_scratch_).subspan(i, j - i));
        metrics_.records_accumulated += shards_.pending_records() - before;
        i = j;
    }
    metrics_.accumulate_ns += now_ns() - t0;
}

void stream_pipeline::finish() {
    if (!bin_open_) return;
    close_bin();
    bin_open_ = false;
}

std::size_t stream_pipeline::run(flow_codec_reader& reader) {
    bounded_queue<std::vector<flow::flow_record>> queue(opts_.queue_frames);
    // Queue depth + one in flight on each side bounds how many buffers
    // can circulate, so the ring never needs to hold more than that.
    frame_ring ring(opts_.queue_frames + 2);
    std::exception_ptr producer_error;

    std::thread producer([&] {
        try {
            std::vector<flow::flow_record> frame = ring.acquire();
            while (reader.next_frame(frame)) {
                if (!queue.push(std::move(frame))) break;
                frame = ring.acquire();
            }
        } catch (...) {
            producer_error = std::current_exception();
        }
        queue.close();
    });

    std::size_t frames = 0;
    std::exception_ptr consumer_error;
    try {
        while (auto frame = queue.pop()) {
            push(*frame);
            ring.release(std::move(*frame));
            ++frames;
        }
    } catch (...) {
        // push() (e.g. a throwing on_bin callback) must not leave the
        // producer blocked on a full queue with a joinable thread going
        // out of scope — that would be std::terminate.
        consumer_error = std::current_exception();
        queue.close();
    }
    producer.join();
    last_run_blocked_pushes_ = queue.blocked_pushes();
    metrics_.frames_reused += ring.reuses();
    if (consumer_error) std::rethrow_exception(consumer_error);
    if (producer_error) std::rethrow_exception(producer_error);
    finish();
    return frames;
}

}  // namespace tfd::stream
