// tfd::stream — bin-synchronous streaming pipeline.
//
// Turns a flow-record stream (codec frames, capture flushes, or raw
// batches) into per-bin entropy snapshots and feeds them to the online
// detector, bin by bin:
//
//   frames -> [bounded queue] -> resolve -> shard accumulate
//          -> (bin boundary) harvest -> online_detector::push -> verdict
//
// "Bin-synchronous" means the pipeline never scores a bin until every
// record of that bin has been accumulated: records drive time forward,
// a bin closes when the first record of a later bin arrives (or on
// finish()), and gap bins are emitted as empty snapshots so the
// detector's time base matches the batch dataset's row-per-bin layout.
// Records for already-closed bins cannot be replayed into the model and
// are counted as late drops (`metrics().late_records`), mirroring what
// a real collector does with straggler exports.
//
// Backpressure: run() decodes frames on a producer thread into a
// bounded queue and consumes them on the calling thread. When
// accumulation + detection falls behind, the queue fills and the
// producer blocks in push() — ingest slows to the pipeline's pace
// instead of buffering the trace in RAM. `bounded_queue` counts blocked
// pushes so deployments can see when they are backpressure-bound.
//
// Every counter the operator needs is in pipeline_metrics: records in /
// accumulated, per-reason resolver drops, late drops, bins and
// anomalies emitted, accumulate/harvest/detect time, and the max and
// mean close-to-verdict latency per bin.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "core/online.h"
#include "flow/od_aggregator.h"
#include "io/snapshot.h"
#include "io/wire.h"
#include "net/topology.h"
#include "stream/flow_codec.h"
#include "stream/shard.h"

namespace tfd::obs {
struct stage_timers;  // obs/metrics.h — optional per-stage latency sinks
}

namespace tfd::stream {

/// A mutex+condvar bounded MPMC queue with blocking push (backpressure)
/// and blocking pop. close() wakes everyone; pop() drains remaining
/// items before reporting end-of-stream.
template <typename T>
class bounded_queue {
public:
    explicit bounded_queue(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity) {}

    /// Blocks while full. Returns false (item dropped) if closed.
    bool push(T item) {
        std::unique_lock lock(mu_);
        if (items_.size() >= capacity_) ++blocked_pushes_;
        space_cv_.wait(lock,
                       [&] { return items_.size() < capacity_ || closed_; });
        if (closed_) return false;
        items_.push_back(std::move(item));
        high_watermark_ = std::max(high_watermark_, items_.size());
        lock.unlock();
        item_cv_.notify_one();
        return true;
    }

    /// Non-blocking push; false when full or closed.
    bool try_push(T item) {
        {
            std::unique_lock lock(mu_);
            if (closed_ || items_.size() >= capacity_) return false;
            items_.push_back(std::move(item));
            high_watermark_ = std::max(high_watermark_, items_.size());
        }
        item_cv_.notify_one();
        return true;
    }

    /// Blocks until an item arrives; std::nullopt once closed and empty.
    std::optional<T> pop() {
        std::unique_lock lock(mu_);
        item_cv_.wait(lock, [&] { return !items_.empty() || closed_; });
        if (items_.empty()) return std::nullopt;
        T item = std::move(items_.front());
        items_.erase(items_.begin());
        lock.unlock();
        space_cv_.notify_one();
        return item;
    }

    void close() {
        {
            std::unique_lock lock(mu_);
            closed_ = true;
        }
        item_cv_.notify_all();
        space_cv_.notify_all();
    }

    std::size_t capacity() const noexcept { return capacity_; }

    /// Times a push() found the queue full (backpressure events).
    std::uint64_t blocked_pushes() const {
        std::unique_lock lock(mu_);
        return blocked_pushes_;
    }

    /// Deepest the queue has been.
    std::size_t high_watermark() const {
        std::unique_lock lock(mu_);
        return high_watermark_;
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::condition_variable item_cv_;
    std::condition_variable space_cv_;
    std::vector<T> items_;
    bool closed_ = false;
    std::uint64_t blocked_pushes_ = 0;
    std::size_t high_watermark_ = 0;
};

/// A bounded free-list of decoded-frame buffers. run()'s producer
/// thread acquires a recycled buffer before each decode and the
/// consumer releases buffers after accumulation, so steady-state
/// streaming performs no per-frame allocation: the ring caps out at
/// queue depth + in-flight buffers and every later frame reuses the
/// capacity a previous frame grew. Thread-safe; counts reuses for the
/// pipeline's `frames_reused` metric.
class frame_ring {
public:
    /// Buffers retained at most (surplus releases free their memory).
    explicit frame_ring(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity) {}

    /// A recycled buffer (cleared, capacity intact) or a fresh one.
    std::vector<flow::flow_record> acquire() {
        std::lock_guard lock(mu_);
        if (free_.empty()) return {};
        std::vector<flow::flow_record> buf = std::move(free_.back());
        free_.pop_back();
        ++reuses_;
        return buf;
    }

    /// Return a consumed buffer to the ring (dropped if the ring is
    /// already holding `capacity` buffers).
    void release(std::vector<flow::flow_record>&& buf) {
        buf.clear();
        std::lock_guard lock(mu_);
        if (free_.size() < capacity_) free_.push_back(std::move(buf));
    }

    /// How many acquires were served from a recycled buffer.
    std::uint64_t reuses() const {
        std::lock_guard lock(mu_);
        return reuses_;
    }

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::vector<std::vector<flow::flow_record>> free_;
    std::uint64_t reuses_ = 0;
};

/// The process-distribution seam at the pipeline's accumulate/harvest
/// boundary. The in-process path routes every resolved batch into its
/// od_shard_set and harvests it at bin close; a dist backend receives
/// exactly those two calls instead, forwarding batches to shard worker
/// processes and running a bin-close barrier that merges their partial
/// histograms back into one bin_statistics. The contract is strict
/// bit-identity: for the same record stream, harvest() must fill `out`
/// with the same bits od_shard_set::accumulate + harvest would have
/// (dist::shard_router achieves this via the canonical OD-keyed cell
/// wire layout and the exact empty-target histogram merge).
class dist_backend {
public:
    virtual ~dist_backend() = default;

    /// Mirror of od_shard_set::accumulate for the cursor's open bin:
    /// ods[i] < 0 is skipped (resolver drop, counted upstream),
    /// ods[i] >= od_count is dropped into records_dropped_bad_od().
    virtual void accumulate(std::span<const flow::flow_record> records,
                            std::span<const int> ods) = 0;

    /// Bin-close barrier: collect every worker's partial state, merge,
    /// fill `out` exactly as od_shard_set::harvest would, and reset for
    /// the next bin (`out.bin` is left to the caller).
    virtual void harvest(bin_statistics& out) = 0;

    /// Records accepted into the open bin since the last harvest.
    virtual std::uint64_t pending_records() const = 0;

    /// Cumulative count of records offered with od >= od_count.
    virtual std::uint64_t records_dropped_bad_od() const = 0;
};

/// Pipeline tuning.
struct pipeline_options {
    std::size_t shards = 0;  ///< OD shards; 0 picks the thread pool size
    std::uint64_t bin_us = flow::default_bin_us;
    core::online_options online{};  ///< passed to the online detector
    /// Frames buffered between the decode thread and the pipeline in
    /// run(); the producer blocks when it gets this far ahead.
    std::size_t queue_frames = 8;
    /// Largest bin jump treated as normal stream behaviour: forward
    /// jumps up to this are bridged with empty gap bins, backward jumps
    /// up to this are late records. A jump beyond it in either
    /// direction is a time-base discontinuity (a feed switching clocks,
    /// or a corrupt timestamp): the open bin is closed, the pipeline
    /// resumes at the new bin, and metrics().time_base_resets counts it
    /// — so a far-future straggler neither spins through millions of
    /// empty harvests nor poisons the time base so every later sane
    /// record gets late-dropped. Default: one week of 5-minute bins.
    std::size_t max_gap_bins = 2016;
    /// Opt-in reorder tolerance (0 = off; up to 64 bins of depth). With
    /// window W, the W bins behind the cursor are held open: bin B is
    /// only closed and scored once a record of bin B+W+1 arrives, so
    /// straggler exports within W bins of the cursor are accepted
    /// (counted in metrics().records_reordered) instead of
    /// late-dropped. Costs W bins of verdict latency; with no
    /// stragglers in the stream the emitted bins and verdicts are
    /// identical to the default path for every W. Must be <=
    /// max_gap_bins (a straggler inside the window is never a
    /// time-base discontinuity); values above 64 are rejected.
    std::size_t reorder_window_bins = 0;
    /// Optional per-stage latency histograms (obs/metrics.h): frame
    /// decode, resolve+accumulate per push, and bin close feed the
    /// corresponding members when non-null. Observability-only — not
    /// part of the config fingerprint, never changes behaviour.
    obs::stage_timers* timers = nullptr;
    /// Distribution seam: when set, the cursor's open bin accumulates
    /// through this backend (worker processes) instead of the local
    /// od_shard_set, and bin closes harvest from it. Not owned; must
    /// outlive the pipeline. NOT part of the config fingerprint — the
    /// backend contract is bit-identity with the in-process path, so
    /// where the cells live is a deployment choice, not a semantic one.
    /// Incompatible with reorder_window_bins > 0 (the held-bin ring is
    /// in-process state) and with save_state() (the open bin lives in
    /// the workers; they checkpoint themselves instead) — both throw.
    dist_backend* dist = nullptr;
};

/// A lifecycle occurrence the on_lifecycle observer is told about —
/// the degraded-operation moments that the bin observer cannot see:
/// time-base discontinuities (emitted at the reset, before the closing
/// bin's on_bin callback), and per-run() quarantine/backpressure
/// summaries (emitted once after a run() drain, with this run's deltas,
/// after the quarantine counters were folded into metrics()).
struct lifecycle_event {
    enum class kind { time_base_reset, quarantine, backpressure };
    kind type = kind::time_base_reset;
    // time_base_reset: the cursor jumped from_bin -> to_bin.
    std::size_t from_bin = 0;
    std::size_t to_bin = 0;
    // quarantine: this run()'s deltas (sum over events == metrics()).
    std::uint64_t frames_quarantined = 0;
    std::uint64_t records_lost = 0;
    std::uint64_t resync_bytes = 0;
    // backpressure: this run()'s producer stalls and peak queue depth.
    std::uint64_t blocked_pushes = 0;
    std::uint64_t queue_high_watermark = 0;
};

/// Operational counters (see the header comment).
struct pipeline_metrics {
    std::uint64_t records_in = 0;           ///< records offered via push()
    std::uint64_t records_accumulated = 0;  ///< survived resolve + lateness
    flow::drop_counts resolver_drops;       ///< per-reason resolve failures
    std::uint64_t late_records = 0;         ///< arrived after their bin closed
    /// Records carrying a positive out-of-range OD index (>= od_count),
    /// dropped by the shard set / dist backend. The resolver never
    /// emits these, so nonzero means a broken producer — but they are
    /// counted, not silently lost: the conservation invariant is
    /// records_in == records_accumulated + late_records +
    /// resolver_drops.total() + records_dropped_bad_od.
    std::uint64_t records_dropped_bad_od = 0;
    /// Stragglers accepted into a held-open bin (reorder_window_bins
    /// only; these records are also counted in records_accumulated).
    std::uint64_t records_reordered = 0;
    std::uint64_t bins_emitted = 0;
    std::uint64_t empty_bins = 0;           ///< gap bins emitted with no records
    std::uint64_t time_base_resets = 0;     ///< forward jumps > max_gap_bins
    std::uint64_t anomalies = 0;
    std::uint64_t accumulate_ns = 0;  ///< resolve + shard accumulation
    std::uint64_t bin_close_ns = 0;   ///< harvest + detector push, total
    std::uint64_t max_bin_close_ns = 0;
    /// Decoded-frame buffers served from the recycling ring across all
    /// run() calls (steady state: every frame after the first
    /// queue-depth's worth reuses a prior buffer's capacity).
    std::uint64_t frames_reused = 0;
    /// Degraded-operation counters, folded in from the codec reader's
    /// quarantine_stats by run() when the reader was constructed with
    /// corrupt_policy::quarantine (always zero under fail_fast):
    /// corrupt frames skipped, records they provably carried, and bytes
    /// discarded while rescanning for the next plausible frame
    /// boundary. Records lost to quarantine never reach push(), so
    /// records_in still names the exact resume position within the
    /// *surviving* record stream.
    std::uint64_t frames_quarantined = 0;
    std::uint64_t records_lost_corrupt = 0;
    std::uint64_t resync_bytes_skipped = 0;

    /// Mean harvest+detect latency per *emitted* bin, in milliseconds.
    /// The denominator is bins_emitted, which includes empty gap bins —
    /// they go through the same harvest+score path, just cheaply — so a
    /// gappy stream reads lower than max_bin_close_ns suggests; compare
    /// against the per-stage histogram for the distribution. Returns
    /// 0.0 before the first bin is emitted (never divides by zero).
    double mean_bin_close_ms() const noexcept {
        return bins_emitted == 0 ? 0.0
                                 : static_cast<double>(bin_close_ns) / 1e6 /
                                       static_cast<double>(bins_emitted);
    }
    /// Ingest throughput over time spent *inside* the pipeline
    /// (accumulate + bin close) — not wall clock, so idle time between
    /// pushes does not dilute it. Counts only records that survived
    /// resolve + lateness (records_accumulated). Returns 0.0 until any
    /// pipeline time has been spent (never divides by zero).
    double records_per_second() const noexcept {
        const double ns =
            static_cast<double>(accumulate_ns) + static_cast<double>(bin_close_ns);
        return ns <= 0.0 ? 0.0
                         : static_cast<double>(records_accumulated) * 1e9 / ns;
    }
};

/// One emitted bin: harvested statistics plus the detector's verdict.
struct bin_result {
    bin_statistics stats;
    core::online_verdict verdict;
};

/// The bin-synchronous streaming driver.
class stream_pipeline {
public:
    /// Throws std::invalid_argument on degenerate options (propagated
    /// from od_shard_set / online_detector).
    explicit stream_pipeline(const net::topology& topo,
                             pipeline_options opts = {});

    /// Observer invoked for every emitted bin, in bin order, on the
    /// thread driving push()/finish()/run().
    void on_bin(std::function<void(const bin_result&)> callback) {
        callback_ = std::move(callback);
    }

    /// Observer for degraded-operation moments the bin observer cannot
    /// see (time-base resets as they happen; quarantine/backpressure
    /// summaries once per run()). Invoked on the thread driving
    /// push()/run(); see lifecycle_event for the exact timing contract.
    void on_lifecycle(std::function<void(const lifecycle_event&)> callback) {
        lifecycle_cb_ = std::move(callback);
    }

    /// Ingest a record batch. Records may span bins; bins must be
    /// non-decreasing across the stream (records for closed bins are
    /// dropped as late). Closing a bin triggers harvest + detection and
    /// the on_bin callback.
    void push(std::span<const flow::flow_record> records);

    /// Drain an entire codec stream: decodes frames on a producer
    /// thread, consumes them here through a bounded queue (capacity
    /// opts.queue_frames), then finishes the open bin. Returns frames
    /// consumed; rethrows codec errors on this thread.
    std::size_t run(flow_codec_reader& reader);

    /// Close the currently open bin (if any) and emit it.
    void finish();

    const pipeline_metrics& metrics() const noexcept { return metrics_; }
    const core::online_detector& detector() const noexcept { return detector_; }

    /// Backpressure observability for the most recent run().
    std::uint64_t last_run_blocked_pushes() const noexcept {
        return last_run_blocked_pushes_;
    }

    // ---- checkpoint/restore (see stream/checkpoint.h for the file
    //      orchestration on top of these hooks) ----

    /// FNV-1a fingerprint of every configuration knob that changes
    /// serialized-state semantics: OD count, effective shard count, bin
    /// width, gap/reorder policy, and the full online-detector options.
    /// Perf-only knobs (queue_frames) are excluded — resuming under a
    /// different queue depth is sound. A snapshot restores only into a
    /// pipeline with an equal fingerprint.
    std::uint64_t config_fingerprint() const;

    /// Add this pipeline's full state to `snap` as three sections:
    /// cursor/time-base/metrics, open-bin shard cells (the cursor's bin
    /// plus every held reorder bin), and the online detector. Bins already
    /// emitted are NOT re-emitted after restore; everything needed to
    /// close the open bin(s) and score every later bin bit-identically
    /// to an uninterrupted run is captured.
    void save_state(io::snapshot_writer& snap) const;

    /// Restore state saved by save_state() into this freshly
    /// constructed pipeline (same topology + options; the checkpoint
    /// layer enforces the fingerprint before any section is readable).
    /// Throws io::wire_error / io::snapshot_error on inconsistent
    /// payloads; on throw the pipeline must be discarded.
    void restore_state(const io::snapshot_reader& snap);

private:
    /// One bin of the reorder ring: an accumulator held open behind the
    /// cursor so stragglers can still land in it.
    struct held_bin {
        std::size_t bin;
        od_shard_set set;
    };

    void emit_bin(od_shard_set& shards, std::size_t bin);
    void close_bin();
    void advance_to(std::size_t bin);
    // ---- reorder ring (reorder_window_bins > 0) ----
    od_shard_set acquire_set();
    od_shard_set* find_held(std::size_t bin);
    od_shard_set* retro_open(std::size_t bin);
    void emit_pending_below(std::size_t limit);
    void reorder_advance(std::size_t bin);

    flow::od_resolver resolver_;
    pipeline_options opts_;
    od_shard_set shards_;
    core::online_detector detector_;
    std::function<void(const bin_result&)> callback_;
    std::function<void(const lifecycle_event&)> lifecycle_cb_;
    pipeline_metrics metrics_;
    bin_result scratch_;           ///< reused harvest/verdict buffer
    std::vector<int> od_scratch_;  ///< reused resolve_batch output
    std::size_t current_bin_ = 0;
    bool bin_open_ = false;
    /// Reorder mode only: bins held open behind the cursor, ascending
    /// by bin index. Sparse — only bins that actually received records
    /// (or were once the cursor) carry an accumulator; window bins
    /// nothing landed in stay implicit and are emitted as empty gap
    /// bins when the window slides past them.
    std::vector<held_bin> held_;
    /// Harvested (empty) shard sets recycled across held bins and
    /// empty-gap emissions, so a sliding window allocates nothing in
    /// steady state.
    std::vector<od_shard_set> set_pool_;
    /// Lowest bin of the current era that has not been emitted: every
    /// bin in [open_floor_, current_bin_) is pending — held, or an
    /// implicit empty gap — and everything below was scored (or
    /// predates the era). Drives ascending gap-complete emission when
    /// the window slides.
    std::size_t open_floor_ = 0;
    /// Highest-scored-bin bookkeeping for the reorder path: a record
    /// behind the cursor but inside the window is a straggler (never
    /// late) as long as its bin was provably never emitted — at stream
    /// start, and after a time-base reset, bins behind the cursor have
    /// no verdict yet even though no accumulator is held for them.
    std::size_t last_emitted_bin_ = 0;
    bool any_emitted_ = false;
    std::uint64_t last_run_blocked_pushes_ = 0;
};

}  // namespace tfd::stream
