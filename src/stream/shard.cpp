#include "stream/shard.h"

#include <algorithm>
#include <stdexcept>

#include "linalg/parallel.h"

namespace tfd::stream {

od_shard_set::od_shard_set(int od_count, std::size_t shards)
    : od_count_(od_count) {
    if (od_count <= 0)
        throw std::invalid_argument("od_shard_set: od_count must be > 0");
    if (shards == 0) shards = linalg::thread_pool::shared().size();
    shards = std::min(shards, static_cast<std::size_t>(od_count));
    shards_.resize(shards);
    for (std::size_t s = 0; s < shards; ++s) {
        // Shard s owns ODs {s, s + S, s + 2S, ...}.
        const auto owned =
            (static_cast<std::size_t>(od_count) - s + shards - 1) / shards;
        shards_[s].cells.resize(owned);
    }
}

void od_shard_set::accumulate(std::span<const flow::flow_record> records,
                              std::span<const int> ods) {
    if (records.size() != ods.size())
        throw std::invalid_argument(
            "od_shard_set: records/ods size mismatch");

    // Route serially so each shard sees its records in input order, then
    // let every shard drain its run in parallel (disjoint cells, so the
    // only cross-shard effect of parallelism is wall-clock).
    for (auto& s : shards_) s.batch.clear();
    std::uint64_t routed = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const int od = ods[i];
        if (od < 0) continue;  // resolver drop, counted upstream
        if (od >= od_count_) {
            // A positive out-of-range OD is not a resolve failure — the
            // resolver only ever emits -1 or a valid index — so it must
            // be counted here or the record vanishes from the
            // records_in == accumulated + late + drops ledger.
            ++dropped_bad_od_;
            continue;
        }
        shards_[shard_of(od)].batch.push_back(static_cast<std::uint32_t>(i));
        ++routed;
    }
    pending_records_ += routed;

    const std::size_t nshards = shards_.size();
    linalg::thread_pool::shared().run(nshards, [&](std::size_t s) {
        shard& sh = shards_[s];
        for (const std::uint32_t i : sh.batch) {
            const int od = ods[i];
            sh.cells[static_cast<std::size_t>(od) / nshards].add_record(
                records[i]);
        }
    });
}

void od_shard_set::harvest(bin_statistics& out) {
    const auto p = static_cast<std::size_t>(od_count_);
    for (auto& e : out.snapshot.entropies) e.assign(p, 0.0);
    out.bytes.assign(p, 0.0);
    out.packets.assign(p, 0.0);
    out.records = pending_records_;

    const std::size_t nshards = shards_.size();
    linalg::thread_pool::shared().run(nshards, [&](std::size_t s) {
        shard& sh = shards_[s];
        for (std::size_t local = 0; local < sh.cells.size(); ++local) {
            const std::size_t od = local * nshards + s;
            auto& cell = sh.cells[local];
            const auto h = cell.entropies();
            for (int f = 0; f < flow::feature_count; ++f)
                out.snapshot.entropies[f][od] = h[f];
            out.bytes[od] = static_cast<double>(cell.total_bytes());
            out.packets[od] = static_cast<double>(cell.total_packets());
            cell.clear();
        }
    });
    pending_records_ = 0;
}

void od_shard_set::save(io::wire_writer& w) const {
    w.varint(static_cast<std::uint64_t>(od_count_));
    w.varint(pending_records_);
    // Count, then emit, the non-empty cells in ascending OD order —
    // a canonical layout independent of the shard partition.
    std::uint64_t nonempty = 0;
    for (int od = 0; od < od_count_; ++od) {
        const auto& cell = shards_[shard_of(od)]
                               .cells[static_cast<std::size_t>(od) /
                                      shards_.size()];
        if (cell.total_records() > 0) ++nonempty;
    }
    w.varint(nonempty);
    for (int od = 0; od < od_count_; ++od) {
        const auto& cell = shards_[shard_of(od)]
                               .cells[static_cast<std::size_t>(od) /
                                      shards_.size()];
        if (cell.total_records() == 0) continue;
        w.varint(static_cast<std::uint64_t>(od));
        cell.save(w);
    }
}

void od_shard_set::load(io::wire_reader& r) {
    if (r.varint() != static_cast<std::uint64_t>(od_count_))
        r.fail("od_shard_set: od_count mismatch");
    const std::uint64_t pending = r.varint();
    for (auto& s : shards_)
        for (auto& cell : s.cells) cell.clear();
    const std::uint64_t nonempty = r.varint();
    if (nonempty > static_cast<std::uint64_t>(od_count_))
        r.fail("od_shard_set: implausible cell count");
    std::int64_t prev_od = -1;
    for (std::uint64_t i = 0; i < nonempty; ++i) {
        const auto od = static_cast<std::int64_t>(r.varint());
        if (od <= prev_od || od >= od_count_)
            r.fail("od_shard_set: cell OD out of order or range");
        prev_od = od;
        shards_[shard_of(static_cast<int>(od))]
            .cells[static_cast<std::size_t>(od) / shards_.size()]
            .load(r);
    }
    pending_records_ = pending;
}

void od_shard_set::clear() {
    for (auto& s : shards_)
        for (auto& cell : s.cells) cell.clear();
    pending_records_ = 0;
}

void od_shard_set::merge_saved(io::wire_reader& r) {
    if (r.varint() != static_cast<std::uint64_t>(od_count_))
        r.fail("od_shard_set: od_count mismatch");
    pending_records_ += r.varint();
    const std::uint64_t nonempty = r.varint();
    if (nonempty > static_cast<std::uint64_t>(od_count_))
        r.fail("od_shard_set: implausible cell count");
    std::int64_t prev_od = -1;
    core::feature_histogram_set incoming;
    for (std::uint64_t i = 0; i < nonempty; ++i) {
        const auto od = static_cast<std::int64_t>(r.varint());
        if (od <= prev_od || od >= od_count_)
            r.fail("od_shard_set: cell OD out of order or range");
        prev_od = od;
        auto& cell = shards_[shard_of(static_cast<int>(od))]
                         .cells[static_cast<std::size_t>(od) / shards_.size()];
        if (cell.total_records() == 0) {
            // The disjoint-partition fast path: deserializing straight
            // into the empty cell is the bit-exact degenerate merge.
            cell.load(r);
        } else {
            incoming.load(r);
            cell.merge(incoming);
        }
    }
}

core::feature_histogram_set od_shard_set::merged_cell(int od) const {
    if (od < 0 || od >= od_count_)
        throw std::out_of_range("od_shard_set: od out of range");
    // With OD partitioning exactly one shard holds this cell (the
    // compact layout reuses local slot od/S for a different OD in every
    // other shard), so the merge has a single contributor — the exact
    // empty-target copy. A future split-state layout (multi-process
    // sharding) would merge one such set per shard instance instead.
    core::feature_histogram_set out;
    out.merge(shards_[shard_of(od)]
                  .cells[static_cast<std::size_t>(od) / shards_.size()]);
    return out;
}

}  // namespace tfd::stream
