#include "stream/checkpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "io/fault.h"
#include "io/snapshot.h"
#include "obs/trace.h"

namespace tfd::stream {

namespace {

namespace fs = std::filesystem;

constexpr const char* kCheckpointPrefix = "checkpoint-";
constexpr const char* kCheckpointSuffix = ".tfss";
constexpr const char* kLegacyName = "checkpoint.tfss";

std::string checkpoint_name(std::uint64_t seq) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "checkpoint-%06llu.tfss",
                  static_cast<unsigned long long>(seq));
    return buf;
}

/// Parse "checkpoint-NNNNNN.tfss" -> NNNNNN; the legacy unnumbered
/// "checkpoint.tfss" maps to nullopt-with-legacy handling at the caller.
std::optional<std::uint64_t> parse_seq(const std::string& name) {
    const std::string prefix = kCheckpointPrefix;
    const std::string suffix = kCheckpointSuffix;
    if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
    if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0)
        return std::nullopt;
    std::uint64_t seq = 0;
    for (std::size_t i = prefix.size(); i < name.size() - suffix.size(); ++i) {
        const char c = name[i];
        if (c < '0' || c > '9') return std::nullopt;
        seq = seq * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return seq;
}

struct candidate {
    /// Legacy unnumbered file sorts below every numbered one.
    bool numbered;
    std::uint64_t seq;
    std::string path;
};

/// All checkpoint files in `dir`, newest first.
std::vector<candidate> list_checkpoints(const std::string& dir) {
    std::vector<candidate> found;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (!entry.is_regular_file(ec)) continue;
        const std::string name = entry.path().filename().string();
        if (const auto seq = parse_seq(name))
            found.push_back({true, *seq, entry.path().string()});
        else if (name == kLegacyName)
            found.push_back({false, 0, entry.path().string()});
    }
    std::sort(found.begin(), found.end(),
              [](const candidate& a, const candidate& b) {
                  if (a.numbered != b.numbered) return a.numbered > b.numbered;
                  return a.seq > b.seq;
              });
    return found;
}

// splitmix64, same recipe as io/fault.cpp: retry jitter must replay
// exactly for a given (jitter_seed, retry index).
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t backoff_with_jitter_us(const checkpoint_options& opts,
                                     std::size_t retry) {
    if (opts.backoff_initial_us == 0) return 0;
    double delay = static_cast<double>(opts.backoff_initial_us);
    for (std::size_t i = 0; i < retry; ++i) delay *= opts.backoff_multiplier;
    const double unit =
        static_cast<double>(mix64(opts.jitter_seed ^ (retry + 1)) >> 11) *
        0x1.0p-53;
    return static_cast<std::uint64_t>(delay + unit * delay * 0.5);
}

}  // namespace

void save_checkpoint(const stream_pipeline& pipeline,
                     const std::string& path) {
    io::snapshot_writer snap(pipeline.config_fingerprint());
    pipeline.save_state(snap);
    snap.save_file(path);
}

void save_checkpoint(const stream_pipeline& pipeline, const std::string& path,
                     const checkpoint_options& opts,
                     checkpoint_save_stats* stats) {
    io::snapshot_writer snap(pipeline.config_fingerprint());
    pipeline.save_state(snap);
    const std::size_t attempts = std::max<std::size_t>(1, opts.save_attempts);
    for (std::size_t attempt = 0;; ++attempt) {
        try {
            // Time each physical attempt, failed ones included (a slow
            // failing disk belongs in the write-latency distribution).
            obs::stage_span span(opts.save_timer);
            snap.save_file(path, opts.faults,
                           opts.first_attempt_index + attempt);
            span.stop();
            if (stats) stats->saves_ok += 1;
            return;
        } catch (const io::snapshot_error& e) {
            // Only the transient cause is worth retrying; everything
            // else (corrupt state, bad config) is a bug, not weather.
            if (e.code() != io::snapshot_errc::io_failure ||
                attempt + 1 >= attempts) {
                if (stats) stats->saves_failed += 1;
                throw;
            }
            if (stats) stats->save_retries += 1;
            const std::uint64_t delay_us = backoff_with_jitter_us(opts, attempt);
            if (delay_us > 0)
                std::this_thread::sleep_for(
                    std::chrono::microseconds(delay_us));
        }
    }
}

void restore_checkpoint(stream_pipeline& pipeline, const std::string& path) {
    const io::snapshot_reader snap =
        io::snapshot_reader::load_file(path, pipeline.config_fingerprint());
    pipeline.restore_state(snap);
}

restore_report restore_latest_checkpoint(stream_pipeline& pipeline,
                                         const std::string& dir) {
    restore_report report;
    for (const auto& cand : list_checkpoints(dir)) {
        report.candidates += 1;
        std::optional<io::snapshot_reader> snap;
        try {
            // Full container validation on the file bytes — nothing in
            // the pipeline is touched until a candidate passes whole.
            snap.emplace(io::snapshot_reader::load_file(
                cand.path, pipeline.config_fingerprint()));
        } catch (const io::snapshot_error& e) {
            switch (e.code()) {
                case io::snapshot_errc::truncated:
                    report.truncated_skipped += 1;
                    break;
                case io::snapshot_errc::io_failure:
                    report.io_failed_skipped += 1;
                    break;
                case io::snapshot_errc::unsupported_version:
                case io::snapshot_errc::fingerprint_mismatch:
                    report.mismatched_skipped += 1;
                    break;
                default:  // bad magic, checksum, framing, sections
                    report.corrupt_skipped += 1;
                    break;
            }
            continue;
        }
        pipeline.restore_state(*snap);
        report.restored_path = cand.path;
        return report;
    }
    return report;
}

periodic_checkpointer::periodic_checkpointer(stream_pipeline& pipeline,
                                             std::string dir,
                                             std::size_t every_bins,
                                             std::size_t keep_last,
                                             checkpoint_options opts)
    : pipeline_(&pipeline),
      dir_(std::move(dir)),
      every_bins_(every_bins),
      keep_last_(keep_last),
      opts_(opts) {
    // Sequence numbers continue past whatever the directory holds, so a
    // restarted daemon never overwrites the snapshot it restored from.
    for (const auto& cand : list_checkpoints(dir_))
        if (cand.numbered) {
            next_seq_ = cand.seq + 1;
            break;
        }
}

void periodic_checkpointer::on_bin_emitted() {
    if (every_bins_ == 0) return;
    if (++since_last_ < every_bins_) return;

    const std::string path =
        (fs::path(dir_) / checkpoint_name(next_seq_)).string();
    checkpoint_options opts = opts_;
    // Every physical attempt so far consumed one decision index: each
    // save used 1 final attempt (ok or failed) plus its retries.
    opts.first_attempt_index = opts_.first_attempt_index + stats_.saves_ok +
                               stats_.saves_failed + stats_.save_retries;
    const std::uint64_t retries_before = stats_.save_retries;
    save_checkpoint(*pipeline_, path, opts, &stats_);

    last_path_ = path;
    const std::uint64_t seq = next_seq_;
    next_seq_ += 1;
    since_last_ = 0;
    ++written_;

    if (keep_last_ > 0 || opts_.keep_hours > 0.0) {
        const auto all = list_checkpoints(dir_);  // newest first
        const auto now = fs::file_time_type::clock::now();
        const auto max_age =
            std::chrono::duration_cast<fs::file_time_type::duration>(
                std::chrono::duration<double, std::ratio<3600>>(
                    opts_.keep_hours));
        for (std::size_t i = 0; i < all.size(); ++i) {
            if (all[i].path == path) continue;  // never the one just written
            bool expire = keep_last_ > 0 && i >= keep_last_;
            if (!expire && opts_.keep_hours > 0.0) {
                std::error_code ec;
                const auto mtime = fs::last_write_time(all[i].path, ec);
                expire = !ec && now - mtime > max_age;
            }
            if (expire) {
                std::error_code ec;
                fs::remove(all[i].path, ec);  // best-effort
            }
        }
    }

    if (on_checkpoint_) {
        checkpoint_written info;
        info.path = path;
        info.seq = seq;
        info.retries = stats_.save_retries - retries_before;
        on_checkpoint_(info);
    }
}

}  // namespace tfd::stream
