#include "stream/checkpoint.h"

#include "io/snapshot.h"

namespace tfd::stream {

void save_checkpoint(const stream_pipeline& pipeline,
                     const std::string& path) {
    io::snapshot_writer snap(pipeline.config_fingerprint());
    pipeline.save_state(snap);
    snap.save_file(path);
}

void restore_checkpoint(stream_pipeline& pipeline, const std::string& path) {
    const io::snapshot_reader snap =
        io::snapshot_reader::load_file(path, pipeline.config_fingerprint());
    pipeline.restore_state(snap);
}

periodic_checkpointer::periodic_checkpointer(stream_pipeline& pipeline,
                                             std::string dir,
                                             std::size_t every_bins)
    : pipeline_(&pipeline),
      path_(std::move(dir) + "/checkpoint.tfss"),
      every_bins_(every_bins) {}

void periodic_checkpointer::on_bin_emitted() {
    if (every_bins_ == 0) return;
    if (++since_last_ < every_bins_) return;
    save_checkpoint(*pipeline_, path_);
    since_last_ = 0;
    ++written_;
}

}  // namespace tfd::stream
