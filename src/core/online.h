// tfd::core — online (streaming) detection.
//
// The paper's conclusion names "online extensions" as ongoing work: an
// operator wants each new 5-minute bin scored as it arrives, not a
// batch re-analysis of three weeks. This module provides that: a
// sliding-window detector that maintains the multiway subspace model
// over the last W bins, scores each incoming bin against the current
// model, and refits on a configurable cadence (refitting every bin
// would cost an eigendecomposition per 5 minutes; the model drifts
// slowly, so refitting every R bins loses little).
//
// Incremental-refit contract: the detector maintains the window's raw
// Gram matrix and column sums incrementally — a rank-1 update when a bin
// is pushed, a rank-1 downdate when the oldest bin is evicted — so
// refit() hands a ready-made covariance (with the per-feature-block
// energy normalization and centering folded in) straight to the
// eigensolver instead of re-flattening and re-multiplying the W x 4p
// window each cadence. To bound floating-point drift from long
// update/downdate streams, the Gram and sums are re-materialized exactly
// from the raw window every `rematerialize_every` refits. Scoring,
// thresholds and identification are unchanged relative to a from-scratch
// batch refit up to rounding (see the online parity test).
//
// The incoming unit of data is one network-wide snapshot: the four
// entropy values and the volume counters for every OD flow in the bin.
#pragma once

#include <array>
#include <cstddef>
#include <deque>
#include <optional>
#include <vector>

#include "core/drift.h"
#include "core/identify.h"
#include "core/multiway.h"
#include "core/subspace.h"
#include "flow/flow_record.h"
#include "io/wire.h"

namespace tfd::obs {
class latency_histogram;  // obs/metrics.h — optional refit latency sink
}

namespace tfd::core {

/// One network-wide observation: per-OD entropy 4-tuples.
struct entropy_snapshot {
    /// entropies[f] holds one value per OD flow, in flow::feature order.
    std::array<std::vector<double>, flow::feature_count> entropies;

    /// Number of OD flows (0 if unset / inconsistent).
    std::size_t flows() const noexcept;
};

/// Where the detector is in its calibration lifecycle.
enum class detector_state : int {
    normal = 0,    ///< model trusted, full-confidence verdicts
    degraded = 1,  ///< drift confirmed, re-learning; low-confidence verdicts
};

/// Drift-aware self-calibration policy (off by default: with
/// enabled == false every verdict and every model state is bit-identical
/// to a detector that predates this option).
struct recalibration_options {
    bool enabled = false;
    /// Drift confirmation policy (Page–Hinkley + alarm-rate watchdog).
    drift_options monitor{};
    /// Bins of post-drift history to re-learn from: once a shift is
    /// confirmed, the detector stays degraded for exactly this many more
    /// bins, then truncates its window to those bins, rebuilds the
    /// moments exactly, refits, and re-estimates the threshold. The
    /// re-learned state is bit-identical to a fresh detector (with
    /// warmup == relearn_bins) fed only the post-drift rows — the
    /// fresh-fit parity contract pinned by tests/core/drift_test.cpp.
    /// Must be in [2, window].
    std::size_t relearn_bins = 32;
    /// Confidence stamped on verdicts while degraded (normal bins carry
    /// 1.0). Detections are never dropped, only marked.
    double degraded_confidence = 0.25;
};

/// Options for the streaming detector.
struct online_options {
    std::size_t window = 576;        ///< sliding history length (bins)
    std::size_t warmup = 288;        ///< bins required before scoring
    std::size_t refit_interval = 48; ///< refit the model every R bins
    subspace_options subspace{.normal_dims = 10, .center = true};
    double alpha = 0.999;
    std::size_t max_identified = 3;  ///< flows identified per detection
    /// Rebuild the incremental Gram/sums exactly from the raw window
    /// every this many refits (drift bound). Must be > 0.
    std::size_t rematerialize_every = 8;
    /// Optional latency sink: each refit() (the eigendecomposition
    /// cadence) records its duration here when non-null.
    /// Observability-only — excluded from the checkpoint fingerprint,
    /// never changes behaviour.
    obs::latency_histogram* refit_timer = nullptr;
    /// Drift-aware self-calibration (core/drift.h); disabled by default.
    recalibration_options recalibration{};
};

/// Verdict for one scored bin.
struct online_verdict {
    std::size_t bin = 0;      ///< running index of the observation
    bool scored = false;      ///< false during warmup
    bool anomalous = false;
    double spe = 0.0;
    double threshold = 0.0;
    /// Identified flows + unit-norm h_tilde of the top one (only set
    /// when anomalous).
    std::vector<identified_flow> flows;
    int top_od = -1;
    std::array<double, flow::feature_count> h_tilde{};
    /// How much to trust this verdict: 1.0 normally,
    /// recalibration_options::degraded_confidence while re-learning.
    double confidence = 1.0;
    /// True while the detector is in the degraded (re-learn) state.
    bool degraded = false;
    /// True on exactly the bin where a distribution shift was confirmed.
    bool drift_detected = false;
    /// True on exactly the bin where recalibration completed (this bin
    /// is already scored under the re-learned model and threshold).
    bool recalibrated = false;
};

/// Sliding-window multiway subspace detector.
///
/// Feed one entropy_snapshot per bin through push(); the detector
/// maintains the window, refits on schedule, and returns a verdict.
/// Deterministic: no hidden randomness.
class online_detector {
public:
    /// `flows` fixes the expected per-snapshot width. Throws
    /// std::invalid_argument on degenerate options.
    online_detector(std::size_t flows, const online_options& opts = {});

    /// Ingest the next bin; returns its verdict (unscored in warmup).
    online_verdict push(const entropy_snapshot& snapshot);

    /// Number of bins ingested so far.
    std::size_t bins_seen() const noexcept { return bins_seen_; }

    /// True once a model is fitted and scoring is live.
    bool ready() const noexcept { return model_.has_value(); }

    /// The live threshold (0 before ready()).
    double threshold() const noexcept { return threshold_; }

    const online_options& options() const noexcept { return opts_; }

    /// Calibration lifecycle state (always `normal` when recalibration
    /// is disabled).
    detector_state state() const noexcept { return state_; }

    /// The drift monitor, or nullptr when recalibration is disabled.
    const drift_monitor* drift() const noexcept {
        return monitor_ ? &*monitor_ : nullptr;
    }

    /// Snapshot hook: serialize the complete streaming state — window
    /// contents, the incrementally maintained Gram + column sums
    /// bit-exactly (so the drift trajectory of future rank-1 updates is
    /// unchanged), refit/rematerialization counters, and the current
    /// subspace model with its threshold. Configuration (flows, options)
    /// is NOT serialized: it belongs to the constructor, and the
    /// checkpoint layer fingerprints it so a snapshot can never be
    /// restored into a differently configured detector.
    void save(io::wire_writer& w) const;

    /// Restore from save() output (state replaced). The detector must
    /// have been constructed with the same flows/options as the one
    /// that saved. After load, every future push() returns verdicts
    /// bit-identical to the uninterrupted detector's. Throws
    /// io::wire_error on truncated or shape-inconsistent payloads.
    void load(io::wire_reader& r);

private:
    void refit();
    void recalibrate();
    std::vector<double> flatten(const entropy_snapshot& s) const;
    void accumulate(const std::vector<double>& row, double sign);
    void rematerialize();

    std::size_t flows_;
    online_options opts_;
    std::deque<std::vector<double>> window_;  ///< raw (un-normalized) rows
    std::array<double, flow::feature_count> norms_{};  ///< current block norms
    std::optional<subspace_model> model_;
    multiway_matrix layout_;  ///< column layout helper (empty matrix)
    double threshold_ = 0.0;
    std::size_t bins_seen_ = 0;
    std::size_t since_refit_ = 0;

    /// Incrementally maintained raw second moments of the window: upper
    /// triangle of sum_r row row^T and per-column sums (see the
    /// incremental-refit contract above).
    linalg::matrix gram_;
    std::vector<double> colsum_;
    std::size_t refits_since_exact_ = 0;
    std::vector<double> obs_buf_;      ///< scoring scratch (normalized obs)
    std::vector<double> spe_scratch_;  ///< scoring scratch (centered obs)

    /// Drift-aware recalibration (engaged only when
    /// opts_.recalibration.enabled; otherwise state_ stays normal and
    /// monitor_ is empty, and push() takes the legacy path untouched).
    std::optional<drift_monitor> monitor_;
    detector_state state_ = detector_state::normal;
    std::size_t relearn_progress_ = 0;  ///< bins observed while degraded
};

}  // namespace tfd::core
