#include "core/multiway.h"

#include <cmath>
#include <stdexcept>

namespace tfd::core {

std::size_t multiway_matrix::column(flow::feature f, int od) const {
    if (od < 0 || static_cast<std::size_t>(od) >= flows)
        throw std::out_of_range("multiway_matrix::column: od out of range");
    return static_cast<std::size_t>(f) * flows + static_cast<std::size_t>(od);
}

std::pair<flow::feature, int> multiway_matrix::unpack(std::size_t col) const {
    if (col >= h.cols())
        throw std::out_of_range("multiway_matrix::unpack: column out of range");
    return {static_cast<flow::feature>(col / flows),
            static_cast<int>(col % flows)};
}

multiway_matrix unfold(
    const std::array<linalg::matrix, flow::feature_count>& features) {
    const std::size_t t = features[0].rows();
    const std::size_t p = features[0].cols();
    if (t == 0 || p == 0)
        throw std::invalid_argument("unfold: empty feature matrices");
    for (const auto& m : features)
        if (m.rows() != t || m.cols() != p)
            throw std::invalid_argument("unfold: feature matrix shape mismatch");

    multiway_matrix out;
    out.flows = p;
    out.h.resize(t, flow::feature_count * p);
    for (int f = 0; f < flow::feature_count; ++f) {
        double norm = linalg::frobenius_norm(features[f]);
        if (norm == 0.0) norm = 1.0;  // all-zero feature block stays zero
        out.submatrix_norm[f] = norm;
        const double inv = 1.0 / norm;
        for (std::size_t r = 0; r < t; ++r) {
            const auto src = features[f].row(r);
            auto dst = out.h.row(r);
            for (std::size_t c = 0; c < p; ++c)
                dst[static_cast<std::size_t>(f) * p + c] = src[c] * inv;
        }
    }
    return out;
}

multiway_matrix unfold(const od_dataset& dataset) {
    return unfold(dataset.entropy);
}

std::array<double, flow::feature_count> flow_residual(
    const multiway_matrix& m, std::span<const double> residual, int od) {
    if (residual.size() != m.h.cols())
        throw std::invalid_argument("flow_residual: residual length mismatch");
    std::array<double, flow::feature_count> out{};
    for (int f = 0; f < flow::feature_count; ++f)
        out[f] = residual[m.column(static_cast<flow::feature>(f), od)];
    return out;
}

std::array<double, flow::feature_count> to_unit_norm(
    std::array<double, flow::feature_count> v) noexcept {
    double n = 0.0;
    for (double x : v) n += x * x;
    if (n <= 0.0) return v;
    const double inv = 1.0 / std::sqrt(n);
    for (double& x : v) x *= inv;
    return v;
}

}  // namespace tfd::core
