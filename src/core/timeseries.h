// tfd::core — network-wide OD-flow timeseries (the Figure 3 tensor).
//
// Six views per (timebin, OD flow) cell: byte count, packet count, and
// sample entropy of the four traffic features. The builder pulls flow
// records per cell from a caller-provided source (the synthetic
// generator, an injection harness, or a file reader) so the full dataset
// never has to exist in memory at once.
#pragma once

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "core/histogram.h"
#include "flow/flow_record.h"
#include "linalg/matrix.h"

namespace tfd::core {

/// Per-cell record source: (bin, od) -> flow records.
using cell_source =
    std::function<std::vector<flow::flow_record>(std::size_t, int)>;

/// The multivariate, multiway dataset of Figure 3: timeseries of volume
/// and per-feature entropy for the ensemble of OD flows.
struct od_dataset {
    linalg::matrix bytes;    ///< t x p byte counts
    linalg::matrix packets;  ///< t x p packet counts
    /// One t x p entropy matrix per feature, indexed by flow::feature.
    std::array<linalg::matrix, flow::feature_count> entropy;

    std::size_t bins() const noexcept { return bytes.rows(); }
    std::size_t flows() const noexcept { return bytes.cols(); }
};

/// Build the dataset by evaluating `source` for every (bin, od) cell.
///
/// `threads` > 1 parallelizes over bins (cells are independent by
/// construction); 0 picks the hardware concurrency. Throws
/// std::invalid_argument if bins or flows is zero.
od_dataset build_od_dataset(std::size_t bins, int flows,
                            const cell_source& source, unsigned threads = 0);

/// Entropy timeseries of a single OD flow for one feature (column slice).
std::vector<double> entropy_series(const od_dataset& d, flow::feature f,
                                   int od);

}  // namespace tfd::core
