// tfd::core — multi-attribute anomaly identification (Section 4.2).
//
// Detection says *when*; identification says *which OD flow(s)*. For
// each candidate flow k a 4p x 4 selection matrix Theta_k picks that
// flow's four feature coordinates, and the best anomaly magnitude f_k is
// the least-squares minimizer of || C_res (h - Theta_k f_k) || where
// C_res projects onto the residual subspace. The flow with the smallest
// minimum wins; the method recurses (deflating the winner's contribution)
// until the residual drops below the detection threshold, so anomalies
// spanning several OD flows are identified one flow at a time.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "core/multiway.h"
#include "core/subspace.h"

namespace tfd::core {

/// One identified flow within a detection.
struct identified_flow {
    int od = -1;
    /// Estimated per-feature anomaly magnitude f_k (in normalized units).
    std::array<double, flow::feature_count> magnitude{};
    /// Residual SPE *after* deflating this flow.
    double spe_after = 0.0;
};

/// Result of recursive identification at one timebin.
struct identification {
    std::vector<identified_flow> flows;  ///< in order of identification
    double spe_before = 0.0;             ///< SPE of the raw observation
};

/// Options bounding the recursion.
struct identify_options {
    std::size_t max_flows = 5;  ///< at most this many flows identified
    /// Stop when SPE falls below this (typically the Q threshold).
    double stop_threshold = 0.0;
};

/// Identify the OD flow(s) responsible for an anomalous observation
/// `obs` (length 4p) under a fitted multiway subspace model.
///
/// Throws std::invalid_argument on dimension mismatch.
identification identify_flows(const subspace_model& model,
                              const multiway_matrix& m,
                              std::span<const double> obs,
                              const identify_options& opts);

}  // namespace tfd::core
