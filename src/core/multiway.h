// tfd::core — the multiway subspace method (Section 4.2).
//
// The three-way entropy tensor H(t, p, k) — time x OD flow x feature —
// is "unfolded" into a single t x 4p matrix by arranging the four t x p
// feature submatrices side by side:
//
//   [ H(srcIP) | H(srcPort) | H(dstIP) | H(dstPort) ]
//
// with each submatrix normalized to unit energy so no one feature
// dominates. The ordinary subspace method then applies to the unfolded
// matrix, detecting correlated entropy changes across OD flows *and*
// features simultaneously.
#pragma once

#include <array>
#include <cstddef>

#include "core/subspace.h"
#include "core/timeseries.h"
#include "flow/flow_record.h"
#include "linalg/matrix.h"

namespace tfd::core {

/// The unfolded (and per-submatrix energy-normalized) multiway matrix.
struct multiway_matrix {
    linalg::matrix h;  ///< t x 4p, feature-major blocks in flow::feature order
    std::size_t flows = 0;  ///< p
    /// Frobenius norm each submatrix was divided by (for un-normalizing).
    std::array<double, flow::feature_count> submatrix_norm{};

    std::size_t bins() const noexcept { return h.rows(); }

    /// Column index of (feature, od): feature block f spans
    /// [f*p, (f+1)*p).
    std::size_t column(flow::feature f, int od) const;

    /// Inverse of column().
    std::pair<flow::feature, int> unpack(std::size_t col) const;
};

/// Unfold four t x p entropy matrices (in flow::feature order) into the
/// merged matrix, normalizing each submatrix to unit energy. Throws
/// std::invalid_argument on shape mismatch or empty input.
multiway_matrix unfold(
    const std::array<linalg::matrix, flow::feature_count>& features);

/// Convenience: unfold the entropy views of an od_dataset.
multiway_matrix unfold(const od_dataset& dataset);

/// Residual entropy 4-vector of one OD flow extracted from a full
/// residual vector (length 4p) of the unfolded matrix, in feature order.
std::array<double, flow::feature_count> flow_residual(
    const multiway_matrix& m, std::span<const double> residual, int od);

/// Rescale a 4-vector to unit Euclidean norm (paper Section 7.1); zero
/// vectors are returned unchanged.
std::array<double, flow::feature_count> to_unit_norm(
    std::array<double, flow::feature_count> v) noexcept;

}  // namespace tfd::core
