#include "core/subspace.h"

#include <cmath>
#include <stdexcept>

#include "linalg/stats.h"

namespace tfd::core {

subspace_model subspace_model::fit(const linalg::matrix& x,
                                   const subspace_options& opts) {
    subspace_model m;
    linalg::pca_options popts;
    popts.center = opts.center;
    m.pca_ = linalg::fit_pca(x, popts);
    m.m_ = std::min(opts.normal_dims, m.pca_.eigenvalues.size());

    // Residual eigenvalue moments phi_i = sum_{j>m} lambda_j^i.
    for (std::size_t j = m.m_; j < m.pca_.eigenvalues.size(); ++j) {
        const double l = m.pca_.eigenvalues[j];
        m.phi_[0] += l;
        m.phi_[1] += l * l;
        m.phi_[2] += l * l * l;
    }
    if (m.phi_[1] > 0.0)
        m.h0_ = 1.0 - 2.0 * m.phi_[0] * m.phi_[2] / (3.0 * m.phi_[1] * m.phi_[1]);
    if (m.h0_ == 0.0) m.h0_ = 1e-6;
    return m;
}

double subspace_model::spe(std::span<const double> obs) const {
    return linalg::squared_prediction_error(pca_, obs, m_);
}

std::vector<double> subspace_model::residual(std::span<const double> obs) const {
    return linalg::residual(pca_, obs, m_);
}

std::vector<double> subspace_model::modeled(std::span<const double> obs) const {
    return linalg::project_normal(pca_, obs, m_);
}

std::vector<double> subspace_model::spe_rows(const linalg::matrix& x) const {
    if (x.cols() != dimension())
        throw std::invalid_argument("spe_rows: column count mismatch");
    std::vector<double> out(x.rows());
    for (std::size_t r = 0; r < x.rows(); ++r) out[r] = spe(x.row(r));
    return out;
}

double subspace_model::q_threshold(double alpha) const {
    if (!(alpha > 0.0 && alpha < 1.0))
        throw std::invalid_argument("q_threshold: alpha must be in (0,1)");
    // Degenerate residual space: nothing left over, nothing to test.
    if (phi_[0] <= 0.0 || phi_[1] <= 0.0) return 0.0;

    const double c = linalg::normal_quantile(alpha);
    const double p1 = phi_[0], p2 = phi_[1];

    // Jackson-Mudholkar [13].
    const double h = h0_;
    const double term = c * std::sqrt(2.0 * p2 * h * h) / p1 + 1.0 +
                        p2 * h * (h - 1.0) / (p1 * p1);
    const double jm = term > 0.0 ? p1 * std::pow(term, 1.0 / h) : 0.0;

    // Box's chi-square approximation (SPE ~ g * chi^2_dof with
    // g = phi2/phi1, dof = phi1^2/phi2), evaluated via Wilson-Hilferty.
    // The JM formula degenerates when h0 -> 0 (slowly decaying residual
    // spectra): its threshold collapses below the SPE mean phi1 and
    // everything gets flagged. Box is well behaved for every spectrum
    // shape, so it serves as a floor.
    const double g = p2 / p1;
    const double dof = p1 * p1 / p2;
    const double wh = 1.0 - 2.0 / (9.0 * dof) + c * std::sqrt(2.0 / (9.0 * dof));
    const double box = g * dof * wh * wh * wh;

    return std::max(jm, box);
}

detection_result detect_rows(const linalg::matrix& x,
                             const subspace_options& opts, double alpha) {
    const auto model = subspace_model::fit(x, opts);
    detection_result out;
    out.spe = model.spe_rows(x);
    out.threshold = model.q_threshold(alpha);
    for (std::size_t r = 0; r < out.spe.size(); ++r)
        if (out.spe[r] > out.threshold) out.anomalous_bins.push_back(r);
    return out;
}

}  // namespace tfd::core
