#include "core/subspace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/serialize.h"
#include "linalg/stats.h"
#include "linalg/symmetric_eigen.h"

namespace tfd::core {

void subspace_model::finish_fit(const subspace_options& opts) {
    m_ = std::min(opts.normal_dims, pca_.eigenvalues.size());

    // Residual eigenvalue moments phi_i = sum_{j>m} lambda_j^i.
    if (pca_.partial_spectrum) {
        // The tail eigenvalues were never materialized; subtract the
        // leading power sums from the exact full-spectrum moments.
        double lead[3] = {0.0, 0.0, 0.0};
        for (std::size_t j = 0; j < m_; ++j) {
            const double l = pca_.eigenvalues[j];
            lead[0] += l;
            lead[1] += l * l;
            lead[2] += l * l * l;
        }
        for (int i = 0; i < 3; ++i)
            phi_[i] = std::max(pca_.spectrum_moments[i] - lead[i], 0.0);
    } else {
        phi_[0] = phi_[1] = phi_[2] = 0.0;
        for (std::size_t j = m_; j < pca_.eigenvalues.size(); ++j) {
            const double l = pca_.eigenvalues[j];
            phi_[0] += l;
            phi_[1] += l * l;
            phi_[2] += l * l * l;
        }
    }
    h0_ = 1.0;
    if (phi_[1] > 0.0)
        h0_ = 1.0 - 2.0 * phi_[0] * phi_[2] / (3.0 * phi_[1] * phi_[1]);
    if (h0_ == 0.0) h0_ = 1e-6;

    rebuild_pt();
}

void subspace_model::rebuild_pt() {
    // Row-contiguous copy of the leading axes for the streaming SPE
    // path. Shared by fitting and snapshot restore so the derived copy
    // cannot drift from the serialized model.
    const std::size_t mm = std::min(m_, pca_.components.cols());
    const std::size_t n = pca_.components.rows();
    pt_.resize(mm, n);
    for (std::size_t i = 0; i < n; ++i) {
        const double* ci = pca_.components.row(i).data();
        for (std::size_t j = 0; j < mm; ++j) pt_(j, i) = ci[j];
    }
}

subspace_model subspace_model::fit(const linalg::matrix& x,
                                   const subspace_options& opts) {
    subspace_model m;
    linalg::pca_options popts;
    popts.center = opts.center;
    // Detection only projects onto the leading normal_dims axes, so skip
    // the orthonormal completion of the residual tail (at the unfolded
    // widths it would dominate the whole fit).
    popts.full_basis = false;
    popts.min_components = opts.normal_dims;
    // The default fit extracts only those axes (plus exact residual
    // moments) through the partial-spectrum solver; partial_fit = false
    // keeps the historical full-QL path for A/B parity.
    m.pca_ = opts.partial_fit
                 ? linalg::fit_pca_topk(x, opts.normal_dims, popts)
                 : linalg::fit_pca(x, popts);
    m.finish_fit(opts);
    return m;
}

subspace_model subspace_model::fit_from_covariance(const linalg::matrix& cov,
                                                   std::vector<double> mean,
                                                   const subspace_options& opts) {
    if (cov.rows() != cov.cols() || cov.rows() != mean.size())
        throw std::invalid_argument(
            "fit_from_covariance: covariance/mean shape mismatch");
    if (cov.rows() == 0)
        throw std::invalid_argument("fit_from_covariance: empty covariance");
    subspace_model m;
    m.pca_.mean = std::move(mean);
    if (opts.partial_fit) {
        // Streaming refits only ever read the leading normal_dims axes;
        // extract exactly those (the d x d eigensolve at the unfolded
        // width is the whole cost of an online refit).
        linalg::partial_eigen_result pe = linalg::symmetric_eigen_topk(
            cov, std::max<std::size_t>(opts.normal_dims, 1));
        for (double& v : pe.values) v = std::max(v, 0.0);
        m.pca_.eigenvalues = std::move(pe.values);
        m.pca_.components = std::move(pe.vectors);
        m.pca_.spectrum_moments = pe.moments;
        m.pca_.partial_spectrum = true;
        m.pca_.total_variance = std::max(pe.moments[0], 0.0);
    } else {
        linalg::eigen_result eg = linalg::symmetric_eigen(cov);
        for (double& v : eg.values) v = std::max(v, 0.0);
        m.pca_.eigenvalues = std::move(eg.values);
        m.pca_.components = std::move(eg.vectors);
        m.pca_.total_variance = 0.0;
        m.pca_.spectrum_moments = {0.0, 0.0, 0.0};
        for (double v : m.pca_.eigenvalues) {
            m.pca_.total_variance += v;
            m.pca_.spectrum_moments[0] += v;
            m.pca_.spectrum_moments[1] += v * v;
            m.pca_.spectrum_moments[2] += v * v * v;
        }
    }
    m.finish_fit(opts);
    return m;
}

void subspace_model::save(io::wire_writer& w) const {
    linalg::save(w, pca_);
    w.varint(m_);
    for (double p : phi_) w.f64(p);
    w.f64(h0_);
}

void subspace_model::load(io::wire_reader& r) {
    linalg::load(r, pca_);
    m_ = static_cast<std::size_t>(r.varint());
    for (double& p : phi_) p = r.f64();
    h0_ = r.f64();
    if (pca_.mean.size() != pca_.components.rows())
        r.fail("subspace_model: mean/components shape mismatch");
    rebuild_pt();
}

double subspace_model::spe(std::span<const double> obs) const {
    thread_local std::vector<double> scratch;
    return spe(obs, scratch);
}

double subspace_model::spe(std::span<const double> obs,
                           std::vector<double>& scratch) const {
    const std::size_t n = dimension();
    if (obs.size() != n)
        throw std::invalid_argument("spe: observation dimension mismatch");
    scratch.resize(n);
    double* centered = scratch.data();
    const double* mean = pca_.mean.data();
    for (std::size_t i = 0; i < n; ++i) centered[i] = obs[i] - mean[i];
    const std::span<const double> c{centered, n};
    const double ssq = linalg::dot(c, c);
    // ||x_tilde||^2 = ||x_c||^2 - sum_j <x_c, v_j>^2 with each score a
    // unit-stride dot against the transposed axis rows.
    double sub = 0.0;
    for (std::size_t j = 0; j < pt_.rows(); ++j) {
        const double s = linalg::dot(c, pt_.row(j));
        sub += s * s;
    }
    const double spe = ssq - sub;
    if (pt_.rows() > 0 && spe < linalg::spe_cancellation_guard * ssq)
        return linalg::squared_prediction_error_by_reconstruction(pca_, obs, m_);
    return spe > 0.0 ? spe : 0.0;
}

std::vector<double> subspace_model::residual(std::span<const double> obs) const {
    return linalg::residual(pca_, obs, m_);
}

std::vector<double> subspace_model::modeled(std::span<const double> obs) const {
    return linalg::project_normal(pca_, obs, m_);
}

std::vector<double> subspace_model::spe_rows(const linalg::matrix& x) const {
    if (x.cols() != dimension())
        throw std::invalid_argument("spe_rows: column count mismatch");
    return linalg::squared_prediction_error_rows(pca_, x, m_);
}

double subspace_model::q_threshold(double alpha) const {
    if (!(alpha > 0.0 && alpha < 1.0))
        throw std::invalid_argument("q_threshold: alpha must be in (0,1)");
    // Degenerate residual space: nothing left over, nothing to test.
    if (phi_[0] <= 0.0 || phi_[1] <= 0.0) return 0.0;

    const double c = linalg::normal_quantile(alpha);
    const double p1 = phi_[0], p2 = phi_[1];

    // Jackson-Mudholkar [13].
    const double h = h0_;
    const double term = c * std::sqrt(2.0 * p2 * h * h) / p1 + 1.0 +
                        p2 * h * (h - 1.0) / (p1 * p1);
    const double jm = term > 0.0 ? p1 * std::pow(term, 1.0 / h) : 0.0;

    // Box's chi-square approximation (SPE ~ g * chi^2_dof with
    // g = phi2/phi1, dof = phi1^2/phi2), evaluated via Wilson-Hilferty.
    // The JM formula degenerates when h0 -> 0 (slowly decaying residual
    // spectra): its threshold collapses below the SPE mean phi1 and
    // everything gets flagged. Box is well behaved for every spectrum
    // shape, so it serves as a floor.
    const double g = p2 / p1;
    const double dof = p1 * p1 / p2;
    const double wh = 1.0 - 2.0 / (9.0 * dof) + c * std::sqrt(2.0 / (9.0 * dof));
    const double box = g * dof * wh * wh * wh;

    return std::max(jm, box);
}

detection_result detect_rows(const linalg::matrix& x,
                             const subspace_options& opts, double alpha) {
    const auto model = subspace_model::fit(x, opts);
    detection_result out;
    out.spe = model.spe_rows(x);
    out.threshold = model.q_threshold(alpha);
    for (std::size_t r = 0; r < out.spe.size(); ++r)
        if (out.spe[r] > out.threshold) out.anomalous_bins.push_back(r);
    return out;
}

}  // namespace tfd::core
