// tfd::core — online drift detection over the detector's own residual
// stream.
//
// The subspace method assumes the normal subspace is stationary: the
// Q-statistic threshold is estimated once per refit window and every
// bin is judged against it. Under concept drift — a routing shift, a
// sampling-rate change, a diurnal regime the window has not seen — the
// residual distribution moves wholesale and the detector either goes
// blind (threshold too high) or alarm-storms (threshold too low).
// Neither failure is an anomaly in the paper's taxonomy; both are a
// *calibration* problem.
//
// This monitor watches the standardized residual x_t = SPE_t /
// threshold_t of every scored bin and raises a typed signal when the
// stream stops looking stationary, using two complementary detectors:
//
//   * A one-sided Page–Hinkley test on x_t: m_t accumulates
//     (x_t - mean_t - delta), and the excursion m_t - min(m) crossing
//     lambda means the residual mean has risen in a sustained way —
//     this catches slow drifts that never cross the alarm threshold.
//   * A sliding alarm-rate watchdog: the fraction of anomalous verdicts
//     over the last `watchdog_window` scored bins. A genuine anomaly
//     (even a violent DDoS) alarms a handful of bins; a moved
//     distribution alarms nearly all of them.
//
// Classification: the watchdog firing is always a distribution shift
// (no Table-1 anomaly storms for a whole window). A Page–Hinkley alarm
// is a shift only when its rising excursion is sustained
// (>= min_shift_bins); a shorter excursion is an anomaly burst — the
// statistic is reset and detection continues uninterrupted, because
// recalibrating on a burst would teach the model that the attack is
// normal.
//
// The monitor is deterministic, allocation-free after construction, and
// serializes with the detector (save/load) so a restored daemon resumes
// the same drift trajectory bit-for-bit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "io/wire.h"

namespace tfd::core {

/// Tuning for the drift monitor. Defaults suit standardized residuals
/// (x = spe/threshold, typically ~0.2-0.6 under stationarity).
struct drift_options {
    /// Page–Hinkley tolerance: mean excursions below this never
    /// accumulate (magnitude-of-change we agree to ignore).
    double ph_delta = 0.05;
    /// Page–Hinkley alarm threshold on the excursion m_t - min(m).
    double ph_lambda = 6.0;
    /// A Page–Hinkley excursion must have been rising for at least this
    /// many scored bins to classify as a shift; shorter ones are bursts.
    std::size_t min_shift_bins = 8;
    /// Sliding window (scored bins) of the alarm-rate watchdog.
    std::size_t watchdog_window = 24;
    /// Alarm fraction over a full watchdog window that confirms a
    /// shift regardless of Page–Hinkley (the alarm-storm detector).
    double storm_rate = 0.5;
};

/// What one observed bin did to the monitor's view of the stream.
enum class drift_signal : int {
    none = 0,   ///< stream still looks stationary
    burst = 1,  ///< short residual spike: an anomaly, not drift
    shift = 2,  ///< sustained move: the normal model is stale
};

/// Online drift monitor; feed one scored verdict per bin via observe().
class drift_monitor {
public:
    /// Throws std::invalid_argument on degenerate options.
    explicit drift_monitor(const drift_options& opts = {});

    /// Observe one scored bin's residual. Returns the signal for this
    /// bin; `shift` means the caller should recalibrate (the monitor
    /// keeps its state until reset() so the confirming statistics stay
    /// readable for event emission).
    drift_signal observe(double spe, double threshold, bool anomalous);

    /// Forget everything (call after recalibration: the re-learned
    /// model defines a new stationarity baseline).
    void reset();

    const drift_options& options() const noexcept { return opts_; }

    /// Current Page–Hinkley excursion m_t - min(m).
    double ph() const noexcept { return ph_m_ - ph_min_; }

    /// Scored bins the current Page–Hinkley excursion has been rising.
    std::size_t excursion_bins() const noexcept { return excursion_bins_; }

    /// Alarm fraction over the (possibly not yet full) watchdog window;
    /// 0 while no bin has been observed.
    double alarm_rate() const noexcept;

    /// Scored bins observed since construction/reset.
    std::uint64_t observed() const noexcept { return observed_; }

    /// Serialize the full monitor state (options excluded — they belong
    /// to the constructor, like the detector's).
    void save(io::wire_writer& w) const;

    /// Restore save() output; the monitor must have been constructed
    /// with the same options. Throws io::wire_error on bad payloads.
    void load(io::wire_reader& r);

private:
    drift_options opts_;
    // Page–Hinkley over x_t = spe / threshold.
    double mean_ = 0.0;        ///< running mean of x_t
    double ph_m_ = 0.0;        ///< cumulative sum of (x - mean - delta)
    double ph_min_ = 0.0;      ///< running min of ph_m_
    std::size_t excursion_bins_ = 0;  ///< bins since ph_m_ last hit ph_min_
    std::uint64_t observed_ = 0;
    // Alarm-rate watchdog: ring of the last watchdog_window anomalous
    // flags (0/1 bytes; the window is tens of bins, not worth a bitset).
    std::vector<std::uint8_t> ring_;
    std::size_t ring_pos_ = 0;
    std::size_t ring_fill_ = 0;
    std::size_t ring_alarms_ = 0;
};

}  // namespace tfd::core
