#include "core/timeseries.h"

#include <stdexcept>
#include <thread>

namespace tfd::core {

od_dataset build_od_dataset(std::size_t bins, int flows,
                            const cell_source& source, unsigned threads) {
    if (bins == 0) throw std::invalid_argument("build_od_dataset: bins == 0");
    if (flows <= 0) throw std::invalid_argument("build_od_dataset: flows <= 0");
    if (!source) throw std::invalid_argument("build_od_dataset: null source");

    od_dataset d;
    const auto p = static_cast<std::size_t>(flows);
    d.bytes.resize(bins, p);
    d.packets.resize(bins, p);
    for (auto& m : d.entropy) m.resize(bins, p);

    if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(threads, static_cast<unsigned>(bins));

    auto work = [&](std::size_t first_bin, std::size_t step) {
        feature_histogram_set hists;
        for (std::size_t bin = first_bin; bin < bins; bin += step) {
            for (int od = 0; od < flows; ++od) {
                hists.clear();
                hists.add_records(source(bin, od));
                d.bytes(bin, od) = static_cast<double>(hists.total_bytes());
                d.packets(bin, od) = static_cast<double>(hists.total_packets());
                const auto h = hists.entropies();
                for (int f = 0; f < flow::feature_count; ++f)
                    d.entropy[f](bin, od) = h[f];
            }
        }
    };

    if (threads <= 1) {
        work(0, 1);
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned i = 0; i < threads; ++i)
            pool.emplace_back(work, i, threads);
        for (auto& t : pool) t.join();
    }
    return d;
}

std::vector<double> entropy_series(const od_dataset& d, flow::feature f,
                                   int od) {
    return d.entropy[static_cast<int>(f)].col(static_cast<std::size_t>(od));
}

}  // namespace tfd::core
