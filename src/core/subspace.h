// tfd::core — the subspace method (Section 4.1).
//
// PCA separates a t x n data matrix into a low-dimensional *normal*
// subspace capturing typical temporal variation and a *residual*
// subspace; each observation x decomposes as x = x_hat + x_tilde and the
// squared prediction error ||x_tilde||^2 (SPE, a.k.a. the Q statistic)
// is tested against the Jackson–Mudholkar threshold delta^2_alpha for a
// chosen false-alarm rate 1 - alpha [13].
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/pca.h"

namespace tfd::core {

/// Options for fitting a subspace model.
struct subspace_options {
    /// Dimension of the normal subspace. The paper found a knee at m ~= 10
    /// capturing ~85% of variance in its datasets.
    std::size_t normal_dims = 10;
    /// Subtract column means before PCA.
    bool center = true;
};

/// A fitted subspace model over one data matrix.
class subspace_model {
public:
    /// Empty (unfitted) model; usable only as an assignment target.
    subspace_model() = default;

    /// Fit on a t x n matrix (rows = timebins). Throws via fit_pca on
    /// degenerate input; normal_dims is clamped to n.
    static subspace_model fit(const linalg::matrix& x,
                              const subspace_options& opts = {});

    /// Squared prediction error ||x_tilde||^2 of one observation.
    double spe(std::span<const double> obs) const;

    /// Residual vector x_tilde (length n).
    std::vector<double> residual(std::span<const double> obs) const;

    /// Modeled (normal) part x_hat.
    std::vector<double> modeled(std::span<const double> obs) const;

    /// SPE for every row of a matrix with matching column count.
    std::vector<double> spe_rows(const linalg::matrix& x) const;

    /// Jackson–Mudholkar Q-statistic threshold delta^2_alpha; SPE above
    /// this is anomalous at (two-sided) confidence alpha. Throws
    /// std::invalid_argument unless 0 < alpha < 1.
    double q_threshold(double alpha) const;

    std::size_t normal_dims() const noexcept { return m_; }
    std::size_t dimension() const noexcept { return pca_.components.rows(); }

    /// Fraction of variance captured by the normal subspace.
    double variance_captured() const { return pca_.variance_captured(m_); }

    const linalg::pca_result& pca() const noexcept { return pca_; }

private:
    linalg::pca_result pca_;
    std::size_t m_ = 0;
    double phi_[3] = {0, 0, 0};  ///< residual eigenvalue moments
    double h0_ = 1.0;
};

/// Detection summary for one data matrix: per-bin SPE plus the bins whose
/// SPE exceeds the threshold.
struct detection_result {
    std::vector<double> spe;           ///< per-bin squared residual norm
    double threshold = 0.0;            ///< Q threshold used
    std::vector<std::size_t> anomalous_bins;
};

/// Fit on `x` and flag every row whose SPE exceeds q_threshold(alpha).
detection_result detect_rows(const linalg::matrix& x,
                             const subspace_options& opts, double alpha);

}  // namespace tfd::core
