// tfd::core — the subspace method (Section 4.1).
//
// PCA separates a t x n data matrix into a low-dimensional *normal*
// subspace capturing typical temporal variation and a *residual*
// subspace; each observation x decomposes as x = x_hat + x_tilde and the
// squared prediction error ||x_tilde||^2 (SPE, a.k.a. the Q statistic)
// is tested against the Jackson–Mudholkar threshold delta^2_alpha for a
// chosen false-alarm rate 1 - alpha [13].
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "io/wire.h"
#include "linalg/matrix.h"
#include "linalg/pca.h"

namespace tfd::core {

/// Options for fitting a subspace model.
struct subspace_options {
    /// Dimension of the normal subspace. The paper found a knee at m ~= 10
    /// capturing ~85% of variance in its datasets.
    std::size_t normal_dims = 10;
    /// Subtract column means before PCA.
    bool center = true;
    /// Fit through the partial-spectrum eigensolver (top normal_dims
    /// eigenpairs via Sturm bisection + inverse iteration; exact
    /// residual-spectrum moments from tridiagonal trace identities).
    /// The solver falls back to full QL on its own when normal_dims is
    /// within a factor 2 of the eigenproblem order. Turning this off
    /// forces the full-QL fit everywhere — the A/B escape hatch the
    /// detection-invariance tests pin the two paths against.
    bool partial_fit = true;
};

/// A fitted subspace model over one data matrix.
class subspace_model {
public:
    /// Empty (unfitted) model; usable only as an assignment target.
    subspace_model() = default;

    /// Fit on a t x n matrix (rows = timebins). Throws via fit_pca on
    /// degenerate input; normal_dims is clamped to n.
    static subspace_model fit(const linalg::matrix& x,
                              const subspace_options& opts = {});

    /// Fit from precomputed second-order moments: `cov` is the n x n
    /// sample covariance of the (already centered) data and `mean` the
    /// column means that were removed. This is the entry point for
    /// streaming callers that maintain the covariance incrementally
    /// (online_detector's rank-1 Gram updates) — it goes straight to the
    /// eigensolver and skips re-materializing any data matrix. Throws
    /// std::invalid_argument if cov is not square of dimension
    /// mean.size().
    static subspace_model fit_from_covariance(const linalg::matrix& cov,
                                              std::vector<double> mean,
                                              const subspace_options& opts = {});

    /// Squared prediction error ||x_tilde||^2 of one observation.
    double spe(std::span<const double> obs) const;

    /// Allocation-free SPE for the single-observation streaming path:
    /// `scratch` is resized on first use and reused across calls.
    double spe(std::span<const double> obs, std::vector<double>& scratch) const;

    /// Residual vector x_tilde (length n).
    std::vector<double> residual(std::span<const double> obs) const;

    /// Modeled (normal) part x_hat.
    std::vector<double> modeled(std::span<const double> obs) const;

    /// SPE for every row of a matrix with matching column count,
    /// evaluated as a batch (two matrix products) rather than row by row.
    std::vector<double> spe_rows(const linalg::matrix& x) const;

    /// Jackson–Mudholkar Q-statistic threshold delta^2_alpha; SPE above
    /// this is anomalous at (two-sided) confidence alpha. Throws
    /// std::invalid_argument unless 0 < alpha < 1.
    double q_threshold(double alpha) const;

    std::size_t normal_dims() const noexcept { return m_; }
    std::size_t dimension() const noexcept { return pca_.components.rows(); }

    /// Fraction of variance captured by the normal subspace.
    double variance_captured() const { return pca_.variance_captured(m_); }

    const linalg::pca_result& pca() const noexcept { return pca_; }

    /// Snapshot hook: serialize the fitted model — full PCA state,
    /// normal dimension, residual-spectrum moments and the threshold
    /// constant — with bit-exact doubles, so a restored model scores
    /// every future observation identically to the original.
    void save(io::wire_writer& w) const;

    /// Restore from save() output (contents replaced; the derived
    /// row-contiguous axis copy is rebuilt). Throws io::wire_error on
    /// truncated or inconsistent payloads.
    void load(io::wire_reader& r);

private:
    void finish_fit(const subspace_options& opts);
    void rebuild_pt();

    linalg::pca_result pca_;
    std::size_t m_ = 0;
    /// Leading m_ principal axes stored row-contiguous (m_ x n), so the
    /// streaming SPE path runs as m_ unit-stride dot products instead of
    /// strided column walks over `components`.
    linalg::matrix pt_;
    double phi_[3] = {0, 0, 0};  ///< residual eigenvalue moments
    double h0_ = 1.0;
};

/// Detection summary for one data matrix: per-bin SPE plus the bins whose
/// SPE exceeds the threshold.
struct detection_result {
    std::vector<double> spe;           ///< per-bin squared residual norm
    double threshold = 0.0;            ///< Q threshold used
    std::vector<std::size_t> anomalous_bins;
};

/// Fit on `x` and flag every row whose SPE exceeds q_threshold(alpha).
detection_result detect_rows(const linalg::matrix& x,
                             const subspace_options& opts, double alpha);

}  // namespace tfd::core
