#include "core/histogram.h"

#include <algorithm>
#include <cmath>

namespace tfd::core {

namespace {

// n * log2(n) with a lookup table for small integral counts (the common
// case: packet counts), avoiding two libm calls per histogram update.
constexpr std::size_t kNlognTableSize = 4096;

double nlogn_slow(double n) noexcept {
    return n > 0.0 ? n * std::log2(n) : 0.0;
}

// Namespace-scope (initialized before main) so lookups skip the
// thread-safe magic-static guard that a function-local static would pay
// on every call.
const std::vector<double> kNlognTable = [] {
    std::vector<double> t(kNlognTableSize, 0.0);
    for (std::size_t i = 2; i < kNlognTableSize; ++i)
        t[i] = nlogn_slow(static_cast<double>(i));
    return t;
}();

double nlogn(double n) noexcept {
    if (n >= 0.0 && n < static_cast<double>(kNlognTableSize)) {
        const auto i = static_cast<std::size_t>(n);
        if (static_cast<double>(i) == n) return kNlognTable[i];
    }
    return nlogn_slow(n);
}

}  // namespace

void feature_histogram::add(std::uint32_t value, double count) {
    if (count <= 0.0) return;
    double& slot = counts_[value];
    const double before = slot;
    slot += count;
    total_ += count;
    sum_nlogn_ += nlogn(slot) - nlogn(before);
    if (++mutations_ >= kExactRecomputeInterval) recompute_sum_nlogn();
}

void feature_histogram::recompute_sum_nlogn() noexcept {
    // Sum in sorted order: a canonical order independent of hash-table
    // iteration, so the periodic resync is exactly reproducible.
    std::vector<double> ns;
    ns.reserve(counts_.size());
    counts_.for_each([&](std::uint32_t, double n) { ns.push_back(n); });
    std::sort(ns.begin(), ns.end());
    double s = 0.0;
    for (double n : ns) s += nlogn(n);
    sum_nlogn_ = s;
    mutations_ = 0;
}

double feature_histogram::entropy_bits() const noexcept {
    if (total_ <= 0.0 || counts_.size() < 2) return 0.0;
    // H = -sum p log2 p = log2 S - (sum n log2 n) / S.
    return std::max(0.0, std::log2(total_) - sum_nlogn_ / total_);
}

double feature_histogram::normalized_entropy() const noexcept {
    if (counts_.size() < 2) return 0.0;
    return entropy_bits() / std::log2(static_cast<double>(counts_.size()));
}

std::vector<std::pair<std::uint32_t, double>> feature_histogram::top(
    std::size_t k) const {
    if (k == 0 || counts_.empty()) return {};
    std::vector<std::pair<std::uint32_t, double>> all;
    all.reserve(counts_.size());
    counts_.for_each(
        [&](std::uint32_t v, double n) { all.emplace_back(v, n); });
    const auto by_count_desc = [](const auto& a, const auto& b) {
        return a.second > b.second ||
               (a.second == b.second && a.first < b.first);
    };
    if (k < all.size()) {
        std::partial_sort(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k),
                          all.end(), by_count_desc);
        all.resize(k);
    } else {
        std::sort(all.begin(), all.end(), by_count_desc);
    }
    return all;
}

std::vector<double> feature_histogram::rank_counts() const {
    std::vector<double> out;
    out.reserve(counts_.size());
    counts_.for_each([&](std::uint32_t, double n) { out.push_back(n); });
    std::sort(out.begin(), out.end(), std::greater<>());
    return out;
}

double feature_histogram::count_of(std::uint32_t value) const noexcept {
    return counts_.count_of(value);
}

void feature_histogram::merge(const feature_histogram& other) {
    if (other.empty()) return;
    if (empty()) {
        // Exact state transfer: the merged histogram is indistinguishable
        // from the source, incremental accumulator and recompute cadence
        // included (the shard layer's bit-identity contract).
        *this = other;
        return;
    }
    counts_.reserve(counts_.size() + other.counts_.size());
    other.counts_.for_each(
        [&](std::uint32_t v, double n) { counts_[v] += n; });
    total_ += other.total_;
    // The incremental accumulators of the two sides were built against
    // different intermediate counts; recompute exactly from the combined
    // table rather than guessing a correction.
    recompute_sum_nlogn();
}

void feature_histogram::clear() noexcept {
    counts_.clear();
    total_ = 0.0;
    sum_nlogn_ = 0.0;
    mutations_ = 0;
}

void feature_histogram::save(io::wire_writer& w) const {
    // Canonical order: ascending key, delta-encoded (sorted u32 gaps
    // pack small). Equal histograms always serialize to equal bytes,
    // independent of hash-table layout or insertion history.
    std::vector<std::pair<std::uint32_t, double>> entries;
    entries.reserve(counts_.size());
    counts_.for_each(
        [&](std::uint32_t v, double n) { entries.emplace_back(v, n); });
    std::sort(entries.begin(), entries.end());
    w.varint(entries.size());
    std::uint32_t prev = 0;
    for (const auto& [key, count] : entries) {
        w.varint(key - prev);
        w.f64(count);
        prev = key;
    }
    w.f64(total_);
    w.f64(sum_nlogn_);
    w.varint(mutations_);
}

void feature_histogram::load(io::wire_reader& r) {
    clear();
    const std::uint64_t n = r.varint();
    if (n > r.remaining() / 9)  // >= 1 key byte + 8 count bytes each
        r.fail("feature_histogram: implausible entry count");
    counts_.reserve(static_cast<std::size_t>(n));
    std::uint32_t key = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        key += static_cast<std::uint32_t>(r.varint());
        const double count = r.f64();
        // A nonpositive count would poison the open-addressing table
        // (count == 0.0 marks an empty slot).
        if (!(count > 0.0)) r.fail("feature_histogram: nonpositive count");
        counts_[key] = count;
    }
    total_ = r.f64();
    sum_nlogn_ = r.f64();
    mutations_ = static_cast<std::size_t>(r.varint());
}

void feature_histogram_set::add_record(const flow::flow_record& r) {
    const auto w = static_cast<double>(r.packets);
    for (int f = 0; f < flow::feature_count; ++f)
        hists_[f].add(r.feature_value(static_cast<flow::feature>(f)), w);
    packets_ += r.packets;
    bytes_ += r.bytes;
    ++records_;
}

void feature_histogram_set::add_records(std::span<const flow::flow_record> rs) {
    // Distinct values are bounded by the record count; pre-sizing the
    // tables avoids rehash-and-move churn during the batch. Cap the
    // reservation so one huge batch can't balloon four bucket arrays.
    const std::size_t hint = std::min<std::size_t>(rs.size(), 1u << 16);
    if (hint > 16)
        for (auto& h : hists_) h.reserve(hint);
    for (const auto& r : rs) add_record(r);
}

void feature_histogram_set::merge(const feature_histogram_set& other) {
    for (int f = 0; f < flow::feature_count; ++f)
        hists_[f].merge(other.hists_[f]);
    packets_ += other.packets_;
    bytes_ += other.bytes_;
    records_ += other.records_;
}

std::array<double, flow::feature_count> feature_histogram_set::entropies()
    const noexcept {
    std::array<double, flow::feature_count> out{};
    for (int f = 0; f < flow::feature_count; ++f)
        out[f] = hists_[f].entropy_bits();
    return out;
}

void feature_histogram_set::clear() noexcept {
    for (auto& h : hists_) h.clear();
    packets_ = 0;
    bytes_ = 0;
    records_ = 0;
}

void feature_histogram_set::save(io::wire_writer& w) const {
    for (const auto& h : hists_) h.save(w);
    w.varint(packets_);
    w.varint(bytes_);
    w.varint(records_);
}

void feature_histogram_set::load(io::wire_reader& r) {
    for (auto& h : hists_) h.load(r);
    packets_ = r.varint();
    bytes_ = r.varint();
    records_ = static_cast<std::size_t>(r.varint());
}

}  // namespace tfd::core
