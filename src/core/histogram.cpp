#include "core/histogram.h"

#include <algorithm>
#include <cmath>

namespace tfd::core {

void feature_histogram::add(std::uint32_t value, double count) {
    if (count <= 0.0) return;
    counts_[value] += count;
    total_ += count;
}

double feature_histogram::entropy_bits() const noexcept {
    if (total_ <= 0.0 || counts_.size() < 2) return 0.0;
    // Sum in sorted order so the result is bit-identical regardless of
    // hash-table iteration order (keeps parallel dataset builds exactly
    // reproducible).
    std::vector<double> ns;
    ns.reserve(counts_.size());
    for (const auto& [value, n] : counts_) ns.push_back(n);
    std::sort(ns.begin(), ns.end());
    double h = 0.0;
    for (double n : ns) {
        const double p = n / total_;
        h -= p * std::log2(p);
    }
    return std::max(0.0, h);
}

double feature_histogram::normalized_entropy() const noexcept {
    if (counts_.size() < 2) return 0.0;
    return entropy_bits() / std::log2(static_cast<double>(counts_.size()));
}

std::vector<std::pair<std::uint32_t, double>> feature_histogram::top(
    std::size_t k) const {
    std::vector<std::pair<std::uint32_t, double>> all(counts_.begin(),
                                                      counts_.end());
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
        return a.second > b.second ||
               (a.second == b.second && a.first < b.first);
    });
    if (all.size() > k) all.resize(k);
    return all;
}

std::vector<double> feature_histogram::rank_counts() const {
    std::vector<double> out;
    out.reserve(counts_.size());
    for (const auto& [value, n] : counts_) out.push_back(n);
    std::sort(out.begin(), out.end(), std::greater<>());
    return out;
}

double feature_histogram::count_of(std::uint32_t value) const noexcept {
    const auto it = counts_.find(value);
    return it == counts_.end() ? 0.0 : it->second;
}

void feature_histogram::clear() noexcept {
    counts_.clear();
    total_ = 0.0;
}

void feature_histogram_set::add_record(const flow::flow_record& r) {
    const auto w = static_cast<double>(r.packets);
    for (int f = 0; f < flow::feature_count; ++f)
        hists_[f].add(r.feature_value(static_cast<flow::feature>(f)), w);
    packets_ += r.packets;
    bytes_ += r.bytes;
    ++records_;
}

void feature_histogram_set::add_records(
    const std::vector<flow::flow_record>& rs) {
    for (const auto& r : rs) add_record(r);
}

std::array<double, flow::feature_count> feature_histogram_set::entropies()
    const noexcept {
    std::array<double, flow::feature_count> out{};
    for (int f = 0; f < flow::feature_count; ++f)
        out[f] = hists_[f].entropy_bits();
    return out;
}

void feature_histogram_set::clear() noexcept {
    for (auto& h : hists_) h.clear();
    packets_ = 0;
    bytes_ = 0;
    records_ = 0;
}

}  // namespace tfd::core
