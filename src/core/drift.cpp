#include "core/drift.h"

#include <stdexcept>

namespace tfd::core {

drift_monitor::drift_monitor(const drift_options& opts) : opts_(opts) {
    if (opts.ph_lambda <= 0.0)
        throw std::invalid_argument("drift_monitor: ph_lambda must be > 0");
    if (opts.ph_delta < 0.0)
        throw std::invalid_argument("drift_monitor: ph_delta must be >= 0");
    if (opts.watchdog_window == 0)
        throw std::invalid_argument(
            "drift_monitor: watchdog_window must be > 0");
    if (opts.storm_rate <= 0.0 || opts.storm_rate > 1.0)
        throw std::invalid_argument(
            "drift_monitor: storm_rate must be in (0, 1]");
    if (opts.min_shift_bins == 0)
        throw std::invalid_argument(
            "drift_monitor: min_shift_bins must be > 0");
    ring_.assign(opts.watchdog_window, 0);
}

void drift_monitor::reset() {
    mean_ = 0.0;
    ph_m_ = 0.0;
    ph_min_ = 0.0;
    excursion_bins_ = 0;
    observed_ = 0;
    std::fill(ring_.begin(), ring_.end(), std::uint8_t{0});
    ring_pos_ = 0;
    ring_fill_ = 0;
    ring_alarms_ = 0;
}

double drift_monitor::alarm_rate() const noexcept {
    return ring_fill_ == 0 ? 0.0
                           : static_cast<double>(ring_alarms_) /
                                 static_cast<double>(ring_fill_);
}

drift_signal drift_monitor::observe(double spe, double threshold,
                                    bool anomalous) {
    // Standardize against the live threshold so the statistic is
    // comparable across refits: x ~ "how close to alarming was this
    // bin". A degenerate threshold (no model variance) contributes a
    // neutral observation rather than an infinity.
    const double x = threshold > 0.0 ? spe / threshold : 0.0;

    // Watchdog ring first: replace the slot's old flag.
    const std::uint8_t flag = anomalous ? 1 : 0;
    if (ring_fill_ < ring_.size()) {
        ++ring_fill_;
    } else {
        ring_alarms_ -= ring_[ring_pos_];
    }
    ring_alarms_ += flag;
    ring_[ring_pos_] = flag;
    ring_pos_ = (ring_pos_ + 1) % ring_.size();

    // Page–Hinkley with a running mean: the first observation defines
    // the baseline (its deviation is zero by construction).
    ++observed_;
    mean_ += (x - mean_) / static_cast<double>(observed_);
    ph_m_ += x - mean_ - opts_.ph_delta;
    if (ph_m_ < ph_min_) {
        ph_min_ = ph_m_;
        excursion_bins_ = 0;
    } else {
        ++excursion_bins_;
    }

    // The storm detector needs a full window before its rate means
    // anything; once it fires, the classification is unambiguous.
    if (ring_fill_ == ring_.size() && alarm_rate() >= opts_.storm_rate)
        return drift_signal::shift;

    if (ph() > opts_.ph_lambda) {
        if (excursion_bins_ >= opts_.min_shift_bins)
            return drift_signal::shift;
        // A violent spike drove the statistic over lambda in only a few
        // bins: an anomaly, not a moved distribution. Restart the test
        // so the burst's tail cannot accumulate into a false shift.
        ph_m_ = 0.0;
        ph_min_ = 0.0;
        excursion_bins_ = 0;
        return drift_signal::burst;
    }
    return drift_signal::none;
}

void drift_monitor::save(io::wire_writer& w) const {
    w.f64(mean_);
    w.f64(ph_m_);
    w.f64(ph_min_);
    w.varint(excursion_bins_);
    w.varint(observed_);
    w.varint(ring_pos_);
    w.varint(ring_fill_);
    w.varint(ring_alarms_);
    for (const std::uint8_t b : ring_) w.u8(b);
}

void drift_monitor::load(io::wire_reader& r) {
    mean_ = r.f64();
    ph_m_ = r.f64();
    ph_min_ = r.f64();
    excursion_bins_ = static_cast<std::size_t>(r.varint());
    observed_ = r.varint();
    ring_pos_ = static_cast<std::size_t>(r.varint());
    ring_fill_ = static_cast<std::size_t>(r.varint());
    ring_alarms_ = static_cast<std::size_t>(r.varint());
    if (ring_pos_ >= ring_.size() || ring_fill_ > ring_.size() ||
        ring_alarms_ > ring_fill_)
        r.fail("drift_monitor: ring state out of range");
    for (std::uint8_t& b : ring_) b = r.u8();
}

}  // namespace tfd::core
