#include "core/online.h"

#include <cmath>
#include <stdexcept>

#include "linalg/serialize.h"
#include "obs/trace.h"

namespace tfd::core {

std::size_t entropy_snapshot::flows() const noexcept {
    const std::size_t n = entropies[0].size();
    for (const auto& e : entropies)
        if (e.size() != n) return 0;
    return n;
}

online_detector::online_detector(std::size_t flows, const online_options& opts)
    : flows_(flows), opts_(opts) {
    if (flows == 0)
        throw std::invalid_argument("online_detector: flows must be > 0");
    if (opts.window < 8)
        throw std::invalid_argument("online_detector: window too small");
    if (opts.warmup < 2 || opts.warmup > opts.window)
        throw std::invalid_argument(
            "online_detector: warmup must be in [2, window]");
    if (opts.refit_interval == 0)
        throw std::invalid_argument(
            "online_detector: refit_interval must be > 0");
    if (opts.rematerialize_every == 0)
        throw std::invalid_argument(
            "online_detector: rematerialize_every must be > 0");
    if (opts.recalibration.enabled) {
        const recalibration_options& rc = opts.recalibration;
        if (rc.relearn_bins < 2 || rc.relearn_bins > opts.window)
            throw std::invalid_argument(
                "online_detector: relearn_bins must be in [2, window]");
        if (rc.degraded_confidence < 0.0 || rc.degraded_confidence > 1.0)
            throw std::invalid_argument(
                "online_detector: degraded_confidence must be in [0, 1]");
        monitor_.emplace(rc.monitor);  // validates the monitor options
    }
    layout_.flows = flows;
    // layout_.h stays empty; only column() arithmetic is used.
    layout_.h.resize(0, flow::feature_count * flows);
    const std::size_t d = flow::feature_count * flows;
    gram_.resize(d, d);
    colsum_.assign(d, 0.0);
}

void online_detector::accumulate(const std::vector<double>& row, double sign) {
    // Rank-1 update (sign +1) or downdate (sign -1) of the window's raw
    // Gram upper triangle and column sums.
    const std::size_t d = row.size();
    for (std::size_t i = 0; i < d; ++i) {
        const double v = sign * row[i];
        colsum_[i] += v;
        if (v == 0.0) continue;
        double* gi = gram_.row(i).data();
        const double* r = row.data();
        for (std::size_t j = i; j < d; ++j) gi[j] += v * r[j];
    }
}

void online_detector::rematerialize() {
    // Exact rebuild of the incremental moments from the raw window, in
    // canonical (oldest-first) order: bounds float drift from long
    // update/downdate streams.
    gram_.fill(0.0);
    std::fill(colsum_.begin(), colsum_.end(), 0.0);
    for (const auto& row : window_) accumulate(row, 1.0);
    refits_since_exact_ = 0;
}

std::vector<double> online_detector::flatten(const entropy_snapshot& s) const {
    std::vector<double> row(flow::feature_count * flows_);
    for (int f = 0; f < flow::feature_count; ++f)
        for (std::size_t od = 0; od < flows_; ++od)
            row[static_cast<std::size_t>(f) * flows_ + od] =
                s.entropies[f][od];
    return row;
}

void online_detector::refit() {
    obs::stage_span refit_span(opts_.refit_timer);
    // The incremental moments already hold everything a fit needs: the
    // per-feature-block energies are diagonal sums of the raw Gram, and
    // the covariance of the block-normalized window is a rescaling of it
    // minus the mean outer product. No W x 4p re-flattening, no O(W d^2)
    // re-multiplication — just O(d^2) scaling and the eigensolve.
    if (++refits_since_exact_ >= opts_.rematerialize_every) rematerialize();

    const std::size_t t = window_.size();
    const std::size_t d = flow::feature_count * flows_;

    // Per-feature block energies over the raw window = block traces of
    // the raw Gram (batch unfold() semantics).
    std::vector<double> col_inv(d, 1.0);
    for (int f = 0; f < flow::feature_count; ++f) {
        double energy = 0.0;
        for (std::size_t od = 0; od < flows_; ++od) {
            const std::size_t c = static_cast<std::size_t>(f) * flows_ + od;
            energy += gram_(c, c);
        }
        const double norm = energy > 0.0 ? std::sqrt(energy) : 1.0;
        norms_[f] = norm;
        const double inv = 1.0 / norm;
        for (std::size_t od = 0; od < flows_; ++od)
            col_inv[static_cast<std::size_t>(f) * flows_ + od] = inv;
    }

    // Column means of the normalized window (zero when not centering).
    std::vector<double> mean(d, 0.0);
    if (opts_.subspace.center)
        for (std::size_t i = 0; i < d; ++i)
            mean[i] = col_inv[i] * colsum_[i] / static_cast<double>(t);

    // cov(i,j) = (di dj G(i,j) - t mu_i mu_j) / (t - 1), built full
    // symmetric from the maintained upper triangle.
    const double denom = static_cast<double>(t - 1);
    linalg::matrix cov(d, d);
    for (std::size_t i = 0; i < d; ++i) {
        const double di = col_inv[i];
        const double mi = mean[i];
        const double* gi = gram_.row(i).data();
        double* ci = cov.row(i).data();
        for (std::size_t j = i; j < d; ++j) {
            ci[j] = (di * col_inv[j] * gi[j] -
                     static_cast<double>(t) * mi * mean[j]) /
                    denom;
        }
    }
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = 0; j < i; ++j) cov(i, j) = cov(j, i);

    model_ = subspace_model::fit_from_covariance(cov, std::move(mean),
                                                 opts_.subspace);
    threshold_ = model_->q_threshold(opts_.alpha);
    since_refit_ = 0;

    // Keep the layout's norms in sync for flow_residual consumers.
    layout_.submatrix_norm = norms_;
}

void online_detector::recalibrate() {
    // The re-learn window is over: the pre-drift history is the stale
    // part, so drop everything but the newest relearn_bins rows (all
    // post-confirmation), rebuild the moments exactly from them, and
    // refit + re-estimate the threshold. The resulting model state is
    // bit-identical to a fresh detector (warmup == relearn_bins) fed
    // exactly those rows: the truncated window matches its window, and
    // rematerialize() accumulates rows oldest-first — the same rank-1
    // sequence the fresh detector's per-push accumulate() performed.
    const std::size_t keep = opts_.recalibration.relearn_bins;
    while (window_.size() > keep) window_.pop_front();
    rematerialize();
    refit();
    state_ = detector_state::normal;
    relearn_progress_ = 0;
    monitor_->reset();
}

void online_detector::save(io::wire_writer& w) const {
    const std::size_t d = flow::feature_count * flows_;
    w.varint(bins_seen_);
    w.varint(since_refit_);
    w.varint(refits_since_exact_);
    w.f64(threshold_);
    for (double n : norms_) w.f64(n);
    linalg::save(w, colsum_);
    // accumulate() maintains only the upper triangle of the raw Gram
    // (the strictly-lower one is structurally zero), so serialize just
    // that: d(d+1)/2 doubles instead of d^2 — the Gram dominates the
    // checkpoint, so this halves its largest section.
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = i; j < d; ++j) w.f64(gram_(i, j));
    w.varint(window_.size());
    for (const auto& row : window_)
        for (double v : row) w.f64(v);
    w.u8(model_.has_value() ? 1 : 0);
    if (model_) model_->save(w);
    // Recalibration block (detector section v2). Written even when
    // disabled — the flag byte keeps the payload self-describing, and
    // the checkpoint fingerprint already pins the enabled option.
    w.u8(monitor_.has_value() ? 1 : 0);
    if (monitor_) {
        w.u8(static_cast<std::uint8_t>(state_));
        w.varint(relearn_progress_);
        monitor_->save(w);
    }
}

void online_detector::load(io::wire_reader& r) {
    const std::size_t d = flow::feature_count * flows_;
    bins_seen_ = static_cast<std::size_t>(r.varint());
    since_refit_ = static_cast<std::size_t>(r.varint());
    refits_since_exact_ = static_cast<std::size_t>(r.varint());
    threshold_ = r.f64();
    for (double& n : norms_) n = r.f64();
    linalg::load(r, colsum_);
    if (colsum_.size() != d)
        r.fail("online_detector: moment shape mismatch");
    gram_.resize(d, d);  // zeroed; only the upper triangle is stored
    for (std::size_t i = 0; i < d; ++i)
        for (std::size_t j = i; j < d; ++j) gram_(i, j) = r.f64();
    const std::uint64_t rows = r.varint();
    if (rows > opts_.window || rows > r.remaining() / (8 * d) + 1)
        r.fail("online_detector: implausible window size");
    window_.clear();
    for (std::uint64_t i = 0; i < rows; ++i) {
        std::vector<double> row(d);
        for (double& v : row) v = r.f64();
        window_.push_back(std::move(row));
    }
    if (r.u8() != 0) {
        model_.emplace();
        model_->load(r);
        if (model_->dimension() != d)
            r.fail("online_detector: model dimension mismatch");
    } else {
        model_.reset();
    }
    if ((r.u8() != 0) != monitor_.has_value())
        r.fail("online_detector: recalibration state presence mismatch");
    if (monitor_) {
        const std::uint8_t s = r.u8();
        if (s > 1) r.fail("online_detector: bad detector state");
        state_ = static_cast<detector_state>(s);
        relearn_progress_ = static_cast<std::size_t>(r.varint());
        monitor_->load(r);
    }
    // Keep the layout's norms in sync for flow_residual consumers,
    // exactly as refit() leaves them.
    layout_.submatrix_norm = norms_;
}

online_verdict online_detector::push(const entropy_snapshot& snapshot) {
    if (snapshot.flows() != flows_)
        throw std::invalid_argument(
            "online_detector: snapshot width mismatch");

    online_verdict v;
    v.bin = bins_seen_++;

    window_.push_back(flatten(snapshot));
    accumulate(window_.back(), 1.0);
    if (window_.size() > opts_.window) {
        accumulate(window_.front(), -1.0);
        window_.pop_front();
    }

    // Degraded bookkeeping before the refit decision: the re-learn
    // window completing on this bin means this bin is scored under the
    // re-learned model, exactly as the fresh-fit reference would score
    // it on its first post-warmup bin.
    bool recalibrated_now = false;
    if (state_ == detector_state::degraded &&
        ++relearn_progress_ >= opts_.recalibration.relearn_bins) {
        recalibrate();
        recalibrated_now = true;
        v.recalibrated = true;
    }

    // While degraded the scheduled refit is suppressed: a cadence refit
    // would blend pre- and post-drift rows into one covariance, which is
    // exactly the miscalibration being escaped. (With recalibration
    // disabled, state_ is permanently normal and this is the legacy
    // expression.)
    const bool due = !model_ || since_refit_ >= opts_.refit_interval;
    if (state_ != detector_state::degraded && !recalibrated_now &&
        window_.size() >= opts_.warmup && due)
        refit();
    ++since_refit_;

    if (!model_) return v;  // still warming up

    // Score the incoming row under the current model, normalizing with
    // the window's block norms.
    obs_buf_ = window_.back();
    std::vector<double>& obs = obs_buf_;
    for (int f = 0; f < flow::feature_count; ++f) {
        const double inv = 1.0 / norms_[f];
        for (std::size_t od = 0; od < flows_; ++od)
            obs[static_cast<std::size_t>(f) * flows_ + od] *= inv;
    }
    v.scored = true;
    v.spe = model_->spe(obs, spe_scratch_);
    v.threshold = threshold_;
    v.anomalous = v.spe > threshold_;

    if (opts_.recalibration.enabled) {
        if (state_ == detector_state::degraded) {
            // Re-learning: keep scoring (and detecting) against the
            // stale model, but say so — detections are marked
            // low-confidence, never dropped.
            v.degraded = true;
            v.confidence = opts_.recalibration.degraded_confidence;
        } else {
            const drift_signal sig =
                monitor_->observe(v.spe, v.threshold, v.anomalous);
            if (sig == drift_signal::shift) {
                state_ = detector_state::degraded;
                relearn_progress_ = 0;
                v.drift_detected = true;
                v.degraded = true;
                v.confidence = opts_.recalibration.degraded_confidence;
            }
        }
    }

    if (!v.anomalous) return v;

    const auto ident =
        identify_flows(*model_, layout_, obs,
                       {.max_flows = opts_.max_identified,
                        .stop_threshold = threshold_});
    v.flows = ident.flows;
    const auto residual = model_->residual(obs);
    if (!v.flows.empty()) {
        v.top_od = v.flows.front().od;
    } else {
        double best = -1.0;
        for (std::size_t od = 0; od < flows_; ++od) {
            const auto fr = flow_residual(layout_, residual,
                                          static_cast<int>(od));
            double e = 0.0;
            for (double x : fr) e += x * x;
            if (e > best) {
                best = e;
                v.top_od = static_cast<int>(od);
            }
        }
    }
    v.h_tilde = to_unit_norm(flow_residual(layout_, residual, v.top_od));
    return v;
}

}  // namespace tfd::core
