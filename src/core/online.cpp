#include "core/online.h"

#include <cmath>
#include <stdexcept>

namespace tfd::core {

std::size_t entropy_snapshot::flows() const noexcept {
    const std::size_t n = entropies[0].size();
    for (const auto& e : entropies)
        if (e.size() != n) return 0;
    return n;
}

online_detector::online_detector(std::size_t flows, const online_options& opts)
    : flows_(flows), opts_(opts) {
    if (flows == 0)
        throw std::invalid_argument("online_detector: flows must be > 0");
    if (opts.window < 8)
        throw std::invalid_argument("online_detector: window too small");
    if (opts.warmup < 2 || opts.warmup > opts.window)
        throw std::invalid_argument(
            "online_detector: warmup must be in [2, window]");
    if (opts.refit_interval == 0)
        throw std::invalid_argument(
            "online_detector: refit_interval must be > 0");
    layout_.flows = flows;
    // layout_.h stays empty; only column() arithmetic is used.
    layout_.h.resize(0, flow::feature_count * flows);
}

std::vector<double> online_detector::flatten(const entropy_snapshot& s) const {
    std::vector<double> row(flow::feature_count * flows_);
    for (int f = 0; f < flow::feature_count; ++f)
        for (std::size_t od = 0; od < flows_; ++od)
            row[static_cast<std::size_t>(f) * flows_ + od] =
                s.entropies[f][od];
    return row;
}

void online_detector::refit() {
    // Assemble the window into a matrix, computing per-feature-block
    // energies over the window (the batch unfold() semantics).
    const std::size_t t = window_.size();
    linalg::matrix h(t, flow::feature_count * flows_);
    for (std::size_t r = 0; r < t; ++r) {
        const auto& row = window_[r];
        for (std::size_t c = 0; c < row.size(); ++c) h(r, c) = row[c];
    }
    for (int f = 0; f < flow::feature_count; ++f) {
        double energy = 0.0;
        for (std::size_t r = 0; r < t; ++r)
            for (std::size_t od = 0; od < flows_; ++od) {
                const double v = h(r, static_cast<std::size_t>(f) * flows_ + od);
                energy += v * v;
            }
        const double norm = energy > 0.0 ? std::sqrt(energy) : 1.0;
        norms_[f] = norm;
        const double inv = 1.0 / norm;
        for (std::size_t r = 0; r < t; ++r)
            for (std::size_t od = 0; od < flows_; ++od)
                h(r, static_cast<std::size_t>(f) * flows_ + od) *= inv;
    }
    model_ = subspace_model::fit(h, opts_.subspace);
    threshold_ = model_->q_threshold(opts_.alpha);
    since_refit_ = 0;

    // Keep the layout's norms in sync for flow_residual consumers.
    layout_.submatrix_norm = norms_;
}

online_verdict online_detector::push(const entropy_snapshot& snapshot) {
    if (snapshot.flows() != flows_)
        throw std::invalid_argument(
            "online_detector: snapshot width mismatch");

    online_verdict v;
    v.bin = bins_seen_++;

    window_.push_back(flatten(snapshot));
    if (window_.size() > opts_.window) window_.pop_front();

    const bool due = !model_ || since_refit_ >= opts_.refit_interval;
    if (window_.size() >= opts_.warmup && due) refit();
    ++since_refit_;

    if (!model_) return v;  // still warming up

    // Score the incoming row under the current model, normalizing with
    // the window's block norms.
    std::vector<double> obs = window_.back();
    for (int f = 0; f < flow::feature_count; ++f) {
        const double inv = 1.0 / norms_[f];
        for (std::size_t od = 0; od < flows_; ++od)
            obs[static_cast<std::size_t>(f) * flows_ + od] *= inv;
    }
    v.scored = true;
    v.spe = model_->spe(obs);
    v.threshold = threshold_;
    v.anomalous = v.spe > threshold_;
    if (!v.anomalous) return v;

    const auto ident =
        identify_flows(*model_, layout_, obs,
                       {.max_flows = opts_.max_identified,
                        .stop_threshold = threshold_});
    v.flows = ident.flows;
    const auto residual = model_->residual(obs);
    if (!v.flows.empty()) {
        v.top_od = v.flows.front().od;
    } else {
        double best = -1.0;
        for (std::size_t od = 0; od < flows_; ++od) {
            const auto fr = flow_residual(layout_, residual,
                                          static_cast<int>(od));
            double e = 0.0;
            for (double x : fr) e += x * x;
            if (e > best) {
                best = e;
                v.top_od = static_cast<int>(od);
            }
        }
    }
    v.h_tilde = to_unit_norm(flow_residual(layout_, residual, v.top_od));
    return v;
}

}  // namespace tfd::core
