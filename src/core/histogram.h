// tfd::core — feature histograms and sample entropy.
//
// The paper's summarization primitive (Section 3): given an empirical
// histogram X = {n_i, i = 1..N} of a traffic feature, the sample entropy
//
//     H(X) = - sum_i (n_i / S) log2 (n_i / S),   S = sum_i n_i
//
// lies in [0, log2 N]: 0 when all observations are one value (maximal
// concentration), log2 N when all values are equally common (maximal
// dispersal). Histograms are built from flow records with each feature
// value weighted by the record's packet count.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flow/flow_record.h"

namespace tfd::core {

/// Packet-count histogram over one traffic feature's values.
class feature_histogram {
public:
    /// Add `count` observations of `value` (count <= 0 is ignored).
    void add(std::uint32_t value, double count = 1.0);

    /// Number of distinct values (N).
    std::size_t distinct() const noexcept { return counts_.size(); }

    /// Total observations (S).
    double total() const noexcept { return total_; }

    bool empty() const noexcept { return counts_.empty(); }

    /// Sample entropy in bits; 0 for empty or single-valued histograms.
    double entropy_bits() const noexcept;

    /// Normalized entropy H / log2(N) in [0,1]; 0 when N < 2.
    double normalized_entropy() const noexcept;

    /// The k most frequent values, by decreasing count (ties by value).
    std::vector<std::pair<std::uint32_t, double>> top(std::size_t k) const;

    /// Counts in decreasing rank order (the Figure 1 view).
    std::vector<double> rank_counts() const;

    /// Raw count of one value (0 if absent).
    double count_of(std::uint32_t value) const noexcept;

    void clear() noexcept;

private:
    std::unordered_map<std::uint32_t, double> counts_;
    double total_ = 0.0;
};

/// The four per-feature histograms of one (timebin, OD flow) cell,
/// accumulated alongside byte/packet volume counters.
class feature_histogram_set {
public:
    /// Accumulate one flow record (feature values weighted by packets).
    void add_record(const flow::flow_record& r);

    /// Accumulate a batch.
    void add_records(const std::vector<flow::flow_record>& rs);

    const feature_histogram& operator[](flow::feature f) const noexcept {
        return hists_[static_cast<int>(f)];
    }

    /// Sample entropies in feature order (srcIP, srcPort, dstIP, dstPort).
    std::array<double, flow::feature_count> entropies() const noexcept;

    std::uint64_t total_packets() const noexcept { return packets_; }
    std::uint64_t total_bytes() const noexcept { return bytes_; }
    std::size_t total_records() const noexcept { return records_; }

    void clear() noexcept;

private:
    std::array<feature_histogram, flow::feature_count> hists_;
    std::uint64_t packets_ = 0;
    std::uint64_t bytes_ = 0;
    std::size_t records_ = 0;
};

}  // namespace tfd::core
