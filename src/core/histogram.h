// tfd::core — feature histograms and sample entropy.
//
// The paper's summarization primitive (Section 3): given an empirical
// histogram X = {n_i, i = 1..N} of a traffic feature, the sample entropy
//
//     H(X) = - sum_i (n_i / S) log2 (n_i / S),   S = sum_i n_i
//
// lies in [0, log2 N]: 0 when all observations are one value (maximal
// concentration), log2 N when all values are equally common (maximal
// dispersal). Histograms are built from flow records with each feature
// value weighted by the record's packet count.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "flow/flow_record.h"
#include "io/wire.h"

namespace tfd::core {

namespace detail {

/// Minimal open-addressing count table: uint32 keys, double counts,
/// linear probing, power-of-two capacity, count == 0.0 marking an empty
/// slot (histogram counts are always positive). One flat allocation and
/// ~5ns inserts versus a node allocation per distinct value with
/// std::unordered_map — the histogram accumulation hot path is mostly
/// this table. No erase; clear() keeps capacity for reuse.
class flat_u32_counts {
public:
    struct entry {
        std::uint32_t key = 0;
        double count = 0.0;
    };

    std::size_t size() const noexcept { return size_; }
    bool empty() const noexcept { return size_ == 0; }

    /// Find-or-insert. A newly inserted slot has count 0.0; the caller
    /// must immediately make it positive (add() always does). The
    /// returned reference is invalidated by the next operator[].
    double& operator[](std::uint32_t key) {
        if (entries_.empty() || (size_ + 1) * 4 > capacity() * 3)
            grow(capacity() == 0 ? 16 : capacity() * 2);
        entry& e = entries_[probe(key)];
        if (e.count == 0.0) {
            e.key = key;
            ++size_;
        }
        return e.count;
    }

    double count_of(std::uint32_t key) const noexcept {
        if (entries_.empty()) return 0.0;
        const entry& e = entries_[probe(key)];
        return e.count != 0.0 ? e.count : 0.0;
    }

    /// Invoke fn(key, count) for every occupied slot, in table order
    /// (unspecified; callers that need determinism must sort).
    template <typename Fn>
    void for_each(Fn&& fn) const {
        for (const entry& e : entries_)
            if (e.count != 0.0) fn(e.key, e.count);
    }

    void reserve(std::size_t n) {
        std::size_t want = 16;
        while (want * 3 < n * 4) want *= 2;
        if (want > capacity()) grow(want);
    }

    void clear() noexcept {
        for (entry& e : entries_) e.count = 0.0;
        size_ = 0;
    }

private:
    std::size_t capacity() const noexcept { return entries_.size(); }

    std::size_t probe(std::uint32_t key) const noexcept {
        // Fibonacci (multiplicative) hashing spreads sequential IPs and
        // ports well; capacity is a power of two so the mask is cheap.
        const std::size_t mask = capacity() - 1;
        std::size_t i = (key * 2654435761u) & mask;
        while (entries_[i].count != 0.0 && entries_[i].key != key)
            i = (i + 1) & mask;
        return i;
    }

    void grow(std::size_t new_cap) {
        std::vector<entry> old = std::move(entries_);
        entries_.assign(new_cap, entry{});
        for (const entry& e : old)
            if (e.count != 0.0) entries_[probe(e.key)] = e;
    }

    std::vector<entry> entries_;
    std::size_t size_ = 0;
};

}  // namespace detail

/// Packet-count histogram over one traffic feature's values.
///
/// Sample entropy is maintained incrementally: add() updates a running
/// sum_nlogn = sum_i n_i log2 n_i accumulator (H = log2 S - sum_nlogn/S),
/// making entropy_bits() O(1) instead of a copy + sort per call. To bound
/// float drift from long update streams, the accumulator is recomputed
/// exactly (in sorted order, a canonical summation independent of hash
/// iteration order) every kExactRecomputeInterval mutations and on every
/// entropy-affecting structural change.
class feature_histogram {
public:
    /// Add `count` observations of `value` (count <= 0 is ignored).
    void add(std::uint32_t value, double count = 1.0);

    /// Number of distinct values (N).
    std::size_t distinct() const noexcept { return counts_.size(); }

    /// Total observations (S).
    double total() const noexcept { return total_; }

    bool empty() const noexcept { return counts_.empty(); }

    /// Sample entropy in bits; 0 for empty or single-valued histograms.
    /// O(1): reads the incrementally maintained accumulator.
    double entropy_bits() const noexcept;

    /// Normalized entropy H / log2(N) in [0,1]; 0 when N < 2.
    double normalized_entropy() const noexcept;

    /// The k most frequent values, by decreasing count (ties by value).
    /// Empty result without touching the table when k == 0 or the
    /// histogram is empty; partial sort when k < distinct().
    std::vector<std::pair<std::uint32_t, double>> top(std::size_t k) const;

    /// Counts in decreasing rank order (the Figure 1 view).
    std::vector<double> rank_counts() const;

    /// Raw count of one value (0 if absent).
    double count_of(std::uint32_t value) const noexcept;

    /// Combine another histogram into this one: counts add per value.
    ///
    /// Merging into an empty histogram copies `other` exactly (table,
    /// total, and accumulator state are preserved bit for bit — the
    /// shard layer relies on this to keep partition→merge results
    /// identical to the single-threaded accumulation). A genuine
    /// two-sided merge recomputes the Σ n·log2 n accumulator exactly
    /// from the combined counts, so merged entropy never inherits
    /// incremental drift from either side.
    void merge(const feature_histogram& other);

    void clear() noexcept;

    /// Pre-size the hash table for about `n` distinct values.
    void reserve(std::size_t n) { counts_.reserve(n); }

    /// Snapshot hook: serialize the complete observable state — the
    /// count table (canonical key order, so equal histograms serialize
    /// to equal bytes), the total, the incremental Σ n·log2 n
    /// accumulator bit-exactly, and the recompute cadence counter.
    /// load() replaces this histogram with exactly that state, so a
    /// resumed histogram's every future entropy value matches the
    /// uninterrupted one bit for bit (hash-table layout may differ; it
    /// never influences a numeric output).
    void save(io::wire_writer& w) const;

    /// Restore from save() output (contents replaced). Throws
    /// io::wire_error on truncated or inconsistent payloads.
    void load(io::wire_reader& r);

private:
    /// Mutations between exact recomputations of sum_nlogn_.
    static constexpr std::size_t kExactRecomputeInterval = 4096;

    void recompute_sum_nlogn() noexcept;

    detail::flat_u32_counts counts_;
    double total_ = 0.0;
    double sum_nlogn_ = 0.0;           ///< sum_i n_i * log2(n_i)
    std::size_t mutations_ = 0;        ///< since last exact recompute
};

/// The four per-feature histograms of one (timebin, OD flow) cell,
/// accumulated alongside byte/packet volume counters.
class feature_histogram_set {
public:
    /// Accumulate one flow record (feature values weighted by packets).
    void add_record(const flow::flow_record& r);

    /// Accumulate a batch (reserves the per-feature tables up front).
    void add_records(std::span<const flow::flow_record> rs);

    /// Combine another cell into this one (per-feature histogram merge
    /// plus the volume counters). See feature_histogram::merge for the
    /// empty-target exactness guarantee.
    void merge(const feature_histogram_set& other);

    const feature_histogram& operator[](flow::feature f) const noexcept {
        return hists_[static_cast<int>(f)];
    }

    /// Sample entropies in feature order (srcIP, srcPort, dstIP, dstPort).
    std::array<double, flow::feature_count> entropies() const noexcept;

    std::uint64_t total_packets() const noexcept { return packets_; }
    std::uint64_t total_bytes() const noexcept { return bytes_; }
    std::size_t total_records() const noexcept { return records_; }

    void clear() noexcept;

    /// Snapshot hook: the four histograms plus the volume counters.
    void save(io::wire_writer& w) const;

    /// Restore from save() output (contents replaced).
    void load(io::wire_reader& r);

private:
    std::array<feature_histogram, flow::feature_count> hists_;
    std::uint64_t packets_ = 0;
    std::uint64_t bytes_ = 0;
    std::size_t records_ = 0;
};

}  // namespace tfd::core
