#include "core/detector.h"

#include <algorithm>
#include <cmath>

namespace tfd::core {

entropy_detection detect_entropy_anomalies(const multiway_matrix& m,
                                           const subspace_options& opts,
                                           double alpha) {
    entropy_detection out;
    out.options = opts;
    out.alpha = alpha;

    const auto model = subspace_model::fit(m.h, opts);
    out.rows.spe = model.spe_rows(m.h);
    out.rows.threshold = model.q_threshold(alpha);

    identify_options iopts;
    iopts.stop_threshold = out.rows.threshold;
    iopts.max_flows = 5;

    for (std::size_t bin = 0; bin < m.h.rows(); ++bin) {
        if (out.rows.spe[bin] <= out.rows.threshold) continue;
        out.rows.anomalous_bins.push_back(bin);

        anomaly_event ev;
        ev.bin = bin;
        ev.spe = out.rows.spe[bin];

        const auto obs = m.h.row(bin);
        const auto residual = model.residual(obs);
        const auto ident = identify_flows(model, m, obs, iopts);
        ev.flows = ident.flows;

        if (!ev.flows.empty()) {
            ev.top_od = ev.flows.front().od;
        } else {
            // Fall back to the flow with the largest residual energy.
            double best = -1.0;
            for (std::size_t od = 0; od < m.flows; ++od) {
                const auto v = flow_residual(m, residual, static_cast<int>(od));
                double e = 0.0;
                for (double x : v) e += x * x;
                if (e > best) {
                    best = e;
                    ev.top_od = static_cast<int>(od);
                }
            }
        }
        ev.h_tilde = to_unit_norm(flow_residual(m, residual, ev.top_od));
        out.events.push_back(std::move(ev));
    }
    return out;
}

entropy_detection detect_entropy_anomalies(const od_dataset& data,
                                           const subspace_options& opts,
                                           double alpha) {
    return detect_entropy_anomalies(unfold(data), opts, alpha);
}

volume_detection detect_volume_anomalies(const od_dataset& data,
                                         const subspace_options& opts,
                                         double alpha) {
    volume_detection out;
    out.bytes = detect_rows(data.bytes, opts, alpha);
    out.packets = detect_rows(data.packets, opts, alpha);
    std::vector<std::size_t> merged;
    merged.reserve(out.bytes.anomalous_bins.size() +
                   out.packets.anomalous_bins.size());
    std::set_union(out.bytes.anomalous_bins.begin(),
                   out.bytes.anomalous_bins.end(),
                   out.packets.anomalous_bins.begin(),
                   out.packets.anomalous_bins.end(),
                   std::back_inserter(merged));
    out.anomalous_bins = std::move(merged);
    return out;
}

detection_overlap compare_detections(const volume_detection& volume,
                                     const entropy_detection& entropy) {
    detection_overlap out;
    const auto& v = volume.anomalous_bins;
    const auto& e = entropy.rows.anomalous_bins;
    std::set_difference(v.begin(), v.end(), e.begin(), e.end(),
                        std::back_inserter(out.volume_only));
    std::set_difference(e.begin(), e.end(), v.begin(), v.end(),
                        std::back_inserter(out.entropy_only));
    std::set_intersection(v.begin(), v.end(), e.begin(), e.end(),
                          std::back_inserter(out.both));
    return out;
}

}  // namespace tfd::core
