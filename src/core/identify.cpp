#include "core/identify.h"

#include <cmath>
#include <stdexcept>

namespace tfd::core {

namespace {

constexpr int kF = flow::feature_count;

// Solve the 4x4 system A f = b by Gaussian elimination with partial
// pivoting; returns false if A is (numerically) singular.
bool solve4(double a[kF][kF], double b[kF], double f[kF]) {
    int perm[kF] = {0, 1, 2, 3};
    for (int col = 0; col < kF; ++col) {
        int piv = col;
        for (int r = col + 1; r < kF; ++r)
            if (std::fabs(a[perm[r]][col]) > std::fabs(a[perm[piv]][col]))
                piv = r;
        std::swap(perm[col], perm[piv]);
        const double diag = a[perm[col]][col];
        if (std::fabs(diag) < 1e-12) return false;
        for (int r = col + 1; r < kF; ++r) {
            const double factor = a[perm[r]][col] / diag;
            if (factor == 0.0) continue;
            for (int c = col; c < kF; ++c) a[perm[r]][c] -= factor * a[perm[col]][c];
            b[perm[r]] -= factor * b[perm[col]];
        }
    }
    for (int row = kF - 1; row >= 0; --row) {
        double acc = b[perm[row]];
        for (int c = row + 1; c < kF; ++c) acc -= a[perm[row]][c] * f[c];
        f[row] = acc / a[perm[row]][row];
    }
    return true;
}

}  // namespace

identification identify_flows(const subspace_model& model,
                              const multiway_matrix& m,
                              std::span<const double> obs,
                              const identify_options& opts) {
    const std::size_t n = model.dimension();
    if (obs.size() != n || m.h.cols() != n)
        throw std::invalid_argument("identify_flows: dimension mismatch");
    const std::size_t p = m.flows;
    const std::size_t md = model.normal_dims();
    const auto& pc = model.pca().components;  // n x n, first md cols used

    // Centered observation and residual r = C_res h.
    std::vector<double> h(n);
    for (std::size_t i = 0; i < n; ++i) h[i] = obs[i] - model.pca().mean[i];
    std::vector<double> scores(md, 0.0);
    for (std::size_t j = 0; j < md; ++j) {
        double s = 0.0;
        for (std::size_t i = 0; i < n; ++i) s += h[i] * pc(i, j);
        scores[j] = s;
    }
    std::vector<double> r = h;
    for (std::size_t j = 0; j < md; ++j)
        for (std::size_t i = 0; i < n; ++i) r[i] -= scores[j] * pc(i, j);

    auto spe_of = [&]() {
        double s = 0.0;
        for (double v : r) s += v * v;
        return s;
    };

    // Precompute per-flow A_k = Theta^T C_res Theta = I - G G^T where row
    // i of G is the md-dim loading of that flow-feature coordinate.
    // A_k never changes across deflation iterations.
    std::vector<std::array<double, kF * kF>> a_all(p);
    for (std::size_t k = 0; k < p; ++k) {
        auto& a = a_all[k];
        for (int i = 0; i < kF; ++i) {
            const std::size_t row_i = static_cast<std::size_t>(i) * p + k;
            for (int j = i; j < kF; ++j) {
                const std::size_t row_j = static_cast<std::size_t>(j) * p + k;
                double dot = 0.0;
                for (std::size_t c = 0; c < md; ++c)
                    dot += pc(row_i, c) * pc(row_j, c);
                const double v = (i == j ? 1.0 : 0.0) - dot;
                a[i * kF + j] = v;
                a[j * kF + i] = v;
            }
        }
    }

    identification out;
    out.spe_before = spe_of();
    double spe = out.spe_before;

    for (std::size_t iter = 0; iter < opts.max_flows; ++iter) {
        if (spe <= opts.stop_threshold) break;

        int best_od = -1;
        double best_value = spe;
        double best_f[kF] = {0, 0, 0, 0};
        for (std::size_t k = 0; k < p; ++k) {
            double a[kF][kF];
            double b[kF];
            for (int i = 0; i < kF; ++i) {
                for (int j = 0; j < kF; ++j) a[i][j] = a_all[k][i * kF + j];
                b[i] = r[static_cast<std::size_t>(i) * p + k];
            }
            double rhs[kF] = {b[0], b[1], b[2], b[3]};
            double f[kF];
            if (!solve4(a, rhs, f)) continue;
            double reduction = 0.0;
            for (int i = 0; i < kF; ++i) reduction += f[i] * b[i];
            const double value = spe - reduction;
            if (value < best_value - 1e-15) {
                best_value = value;
                best_od = static_cast<int>(k);
                for (int i = 0; i < kF; ++i) best_f[i] = f[i];
            }
        }
        if (best_od < 0) break;  // no flow reduces the residual

        // Deflate: r -= C_res Theta_k f  (Theta_k f is sparse: 4 entries).
        double u[64];  // md <= 64 in practice; fall back if larger
        std::vector<double> u_dyn;
        double* up = u;
        if (md > 64) {
            u_dyn.resize(md);
            up = u_dyn.data();
        }
        for (std::size_t c = 0; c < md; ++c) {
            double s = 0.0;
            for (int i = 0; i < kF; ++i)
                s += best_f[i] *
                     pc(static_cast<std::size_t>(i) * p + best_od, c);
            up[c] = s;
        }
        for (int i = 0; i < kF; ++i)
            r[static_cast<std::size_t>(i) * p + best_od] -= best_f[i];
        for (std::size_t c = 0; c < md; ++c) {
            const double s = up[c];
            if (s == 0.0) continue;
            for (std::size_t row = 0; row < n; ++row) r[row] += s * pc(row, c);
        }

        spe = spe_of();
        identified_flow idf;
        idf.od = best_od;
        for (int i = 0; i < kF; ++i) idf.magnitude[i] = best_f[i];
        idf.spe_after = spe;
        out.flows.push_back(idf);
    }
    return out;
}

}  // namespace tfd::core
