// tfd::core — end-to-end detectors over an od_dataset.
//
// Volume detection reproduces the SIGCOMM'04 baseline [24]: the subspace
// method on byte-count and packet-count OD timeseries (an anomaly in
// either counts as volume-detected). Entropy detection is the paper's
// contribution: the multiway subspace method on the unfolded entropy
// tensor, followed by multi-attribute identification and extraction of
// the unit-norm residual entropy vector h_tilde used for classification.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "core/identify.h"
#include "core/multiway.h"
#include "core/subspace.h"
#include "core/timeseries.h"

namespace tfd::core {

/// One detected entropy anomaly.
struct anomaly_event {
    std::size_t bin = 0;
    double spe = 0.0;  ///< ||h_tilde||^2 at the bin (whole-network)
    /// OD flows identified by recursive multi-attribute identification.
    std::vector<identified_flow> flows;
    /// OD flow judged primarily responsible (first identified, or the one
    /// with the largest residual if identification found none).
    int top_od = -1;
    /// Unit-norm residual entropy vector of top_od, in feature order
    /// (srcIP, srcPort, dstIP, dstPort) — the classification coordinates.
    std::array<double, flow::feature_count> h_tilde{};
};

/// Entropy-detection output.
struct entropy_detection {
    detection_result rows;            ///< per-bin SPE + threshold
    std::vector<anomaly_event> events;
    subspace_options options;
    double alpha = 0.0;
};

/// Volume-detection output (baseline).
struct volume_detection {
    detection_result bytes;
    detection_result packets;
    /// Bins anomalous in either metric.
    std::vector<std::size_t> anomalous_bins;
};

/// Run the multiway subspace method on a dataset's entropy tensor.
entropy_detection detect_entropy_anomalies(const od_dataset& data,
                                           const subspace_options& opts,
                                           double alpha);

/// Same, reusing an already-unfolded matrix (for experiments that unfold
/// once and inject repeatedly).
entropy_detection detect_entropy_anomalies(const multiway_matrix& m,
                                           const subspace_options& opts,
                                           double alpha);

/// Run the volume baseline on bytes and packets.
volume_detection detect_volume_anomalies(const od_dataset& data,
                                         const subspace_options& opts,
                                         double alpha);

/// How two detectors' anomalous-bin sets relate (Table 2 / Figure 4).
struct detection_overlap {
    std::vector<std::size_t> volume_only;
    std::vector<std::size_t> entropy_only;
    std::vector<std::size_t> both;

    std::size_t total() const noexcept {
        return volume_only.size() + entropy_only.size() + both.size();
    }
};

/// Partition anomalous bins into volume-only / entropy-only / both.
detection_overlap compare_detections(const volume_detection& volume,
                                     const entropy_detection& entropy);

}  // namespace tfd::core
