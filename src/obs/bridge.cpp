#include "obs/bridge.h"

#include "linalg/simd.h"
#include "net/topology.h"
#include "obs/json.h"

namespace tfd::obs {

pipeline_bridge::pipeline_bridge(stream::stream_pipeline& pipeline,
                                 bridge_options opts)
    : pipeline_(&pipeline), opts_(opts), emitter_(opts.sink, opts.first_seq) {
    if (metrics_registry* reg = opts_.registry) {
        m_.records_in = &reg->get_counter(
            "tfd_records_in_total", "Flow records offered to the pipeline");
        m_.records_accumulated = &reg->get_counter(
            "tfd_records_accumulated_total",
            "Records that survived resolve and lateness");
        m_.records_late = &reg->get_counter(
            "tfd_records_late_total",
            "Resolvable records dropped because their bin was already scored");
        m_.records_reordered = &reg->get_counter(
            "tfd_records_reordered_total",
            "Stragglers accepted into a held reorder bin");
        m_.records_dropped_bad_od = &reg->get_counter(
            "tfd_records_dropped_bad_od_total",
            "Records dropped: OD index out of range (broken producer)");
        m_.drops_unknown_ingress = &reg->get_counter(
            "tfd_resolver_drops_unknown_ingress_total",
            "Records dropped: source address outside every PoP");
        m_.drops_unresolvable_egress = &reg->get_counter(
            "tfd_resolver_drops_unresolvable_egress_total",
            "Records dropped: no egress PoP resolvable");
        m_.bins_emitted = &reg->get_counter("tfd_bins_emitted_total",
                                            "Timebins closed and scored");
        m_.bins_empty = &reg->get_counter(
            "tfd_bins_empty_total", "Gap bins emitted with no records");
        m_.anomalies = &reg->get_counter("tfd_anomalies_total",
                                         "Bins the detector flagged");
        m_.time_base_resets = &reg->get_counter(
            "tfd_time_base_resets_total",
            "Time-base discontinuities (> max_gap_bins jumps)");
        m_.frames_quarantined = &reg->get_counter(
            "tfd_frames_quarantined_total", "Corrupt codec frames skipped");
        m_.records_lost_corrupt = &reg->get_counter(
            "tfd_records_lost_corrupt_total",
            "Records provably lost inside quarantined frames");
        m_.resync_bytes_skipped = &reg->get_counter(
            "tfd_resync_bytes_skipped_total",
            "Bytes discarded while rescanning for a frame boundary");
        m_.backpressure_blocked = &reg->get_counter(
            "tfd_backpressure_blocked_pushes_total",
            "Producer pushes that found the frame queue full");
        m_.frames_reused = &reg->get_counter(
            "tfd_frames_reused_total",
            "Decoded-frame buffers served from the recycling ring");
        m_.events_emitted = &reg->get_counter(
            "tfd_events_emitted_total", "Structured events emitted");
        m_.alerts_total = &reg->get_counter(
            "tfd_alerts_total", "Alerts delivered (survived dedup)");
        m_.alerts_suppressed = &reg->get_counter(
            "tfd_alerts_suppressed_total",
            "Alerts suppressed by the per-OD cooldown");
        m_.checkpoints_written = &reg->get_counter(
            "tfd_checkpoints_written_total", "Periodic checkpoints written");
        m_.checkpoint_retries = &reg->get_counter(
            "tfd_checkpoint_retries_total",
            "Extra checkpoint save attempts beyond the first");
        m_.drift_events = &reg->get_counter(
            "tfd_drift_events_total",
            "Distribution shifts confirmed by the drift monitor");
        m_.recalibrations = &reg->get_counter(
            "tfd_recalibrations_total",
            "Detector recalibrations completed after a drift");
        m_.detector_state = &reg->get_gauge(
            "tfd_detector_state",
            "Detector calibration state: 0=normal, 1=degraded (re-learning)");
        m_.records_per_second = &reg->get_gauge(
            "tfd_ingest_records_per_second",
            "Throughput over time spent inside the pipeline "
            "(pipeline_metrics::records_per_second)");
        m_.bin_close_mean_seconds = &reg->get_gauge(
            "tfd_bin_close_mean_seconds",
            "Mean harvest+detect latency per emitted bin, empty gap bins "
            "included (pipeline_metrics::mean_bin_close_ms)");
        m_.kernel_isa = &reg->get_gauge(
            "tfd_kernel_isa",
            "SIMD tier the linalg kernels dispatched to: 0=scalar, "
            "1=fma256, 2=avx512");
        // Dispatch is decided once at process start; stamp it so a
        // scrape shows which tier this daemon actually runs.
        m_.kernel_isa->set(static_cast<double>(
            static_cast<int>(linalg::active_kernel_isa())));
        emitter_.count_into(m_.events_emitted);
    }
    pipeline.on_lifecycle(
        [this](const stream::lifecycle_event& ev) { on_lifecycle(ev); });
}

void pipeline_bridge::fill_od_names(int od, std::string& origin,
                                    std::string& dest) const {
    if (!opts_.topology || od < 0 || od >= opts_.topology->od_count()) return;
    const auto [o, d] = opts_.topology->od_pair(od);
    origin = opts_.topology->pops()[static_cast<std::size_t>(o)].name;
    dest = opts_.topology->pops()[static_cast<std::size_t>(d)].name;
}

void pipeline_bridge::observe_bin(const stream::bin_result& r) {
    const stream::pipeline_metrics& pm = pipeline_->metrics();
    last_bin_ = r.stats.bin;

    bin_closed_data bc;
    bc.records = r.stats.records;
    bc.empty = r.stats.records == 0;
    bc.scored = r.verdict.scored;
    bc.anomalous = r.verdict.anomalous;
    // emit_bin folded this bin's close time into the cumulative counter
    // before invoking the observer, so the delta is exactly this bin's.
    bc.close_ns = pm.bin_close_ns - last_bin_close_ns_;
    last_bin_close_ns_ = pm.bin_close_ns;
    emitter_.emit(r.stats.bin, event_data(bc));

    if (r.verdict.degraded) ++degraded_bins_;

    if (r.verdict.drift_detected) {
        // The detector keeps the monitor's confirming statistics until
        // the recalibration bin, so they are still readable here.
        drift_data dd;
        if (const core::drift_monitor* mon = pipeline_->detector().drift()) {
            dd.ph = mon->ph();
            dd.alarm_rate = mon->alarm_rate();
        }
        dd.relearn_bins =
            pipeline_->detector().options().recalibration.relearn_bins;
        if (m_.drift_events) m_.drift_events->inc();
        emitter_.emit(r.stats.bin, event_data(dd));
    }

    if (r.verdict.recalibrated) {
        recalibrated_data rd;
        rd.threshold = r.verdict.threshold;
        rd.bins_degraded = degraded_bins_;
        degraded_bins_ = 0;
        if (m_.recalibrations) m_.recalibrations->inc();
        emitter_.emit(r.stats.bin, event_data(rd));
    }

    if (r.verdict.anomalous) {
        anomaly_data an;
        an.od = r.verdict.top_od;
        an.spe = r.verdict.spe;
        an.threshold = r.verdict.threshold;
        an.h_tilde = r.verdict.h_tilde;
        an.confidence = r.verdict.confidence;
        fill_od_names(an.od, an.origin, an.dest);
        alert_decision d;
        if (r.verdict.degraded) {
            // Re-learn window: the alarm storm that triggered the drift
            // must not flood the alert manager (or burn its per-OD
            // cooldowns). The detection is still delivered as an event,
            // marked suppressed + low-confidence.
            d.ratio = an.threshold > 0.0 ? an.spe / an.threshold : 0.0;
            d.sev = severity::warning;
            d.suppressed = true;
        } else if (opts_.alerts) {
            d = opts_.alerts->observe(r.stats.bin, an.od, an.spe,
                                      an.threshold);
        } else {
            d.ratio = an.threshold > 0.0 ? an.spe / an.threshold : 0.0;
            d.sev = severity::warning;
        }
        an.ratio = d.ratio;
        an.severity = severity_name(d.sev);
        an.suppressed = d.suppressed;
        an.flows.reserve(r.verdict.flows.size());
        for (const core::identified_flow& f : r.verdict.flows) {
            anomaly_flow af;
            af.od = f.od;
            af.magnitude = f.magnitude;
            af.spe_after = f.spe_after;
            fill_od_names(af.od, af.origin, af.dest);
            an.flows.push_back(std::move(af));
        }
        emitter_.emit(r.stats.bin, event_data(std::move(an)));
    }

    sync_metrics();
}

void pipeline_bridge::sync_metrics() {
    if (!opts_.registry) return;
    const stream::pipeline_metrics& pm = pipeline_->metrics();
    m_.records_in->set_to(pm.records_in);
    m_.records_accumulated->set_to(pm.records_accumulated);
    m_.records_late->set_to(pm.late_records);
    m_.records_reordered->set_to(pm.records_reordered);
    m_.records_dropped_bad_od->set_to(pm.records_dropped_bad_od);
    m_.drops_unknown_ingress->set_to(pm.resolver_drops.unknown_ingress);
    m_.drops_unresolvable_egress->set_to(pm.resolver_drops.unresolvable_egress);
    m_.bins_emitted->set_to(pm.bins_emitted);
    m_.bins_empty->set_to(pm.empty_bins);
    m_.anomalies->set_to(pm.anomalies);
    m_.time_base_resets->set_to(pm.time_base_resets);
    m_.frames_quarantined->set_to(pm.frames_quarantined);
    m_.records_lost_corrupt->set_to(pm.records_lost_corrupt);
    m_.resync_bytes_skipped->set_to(pm.resync_bytes_skipped);
    m_.frames_reused->set_to(pm.frames_reused);
    m_.records_per_second->set(pm.records_per_second());
    m_.bin_close_mean_seconds->set(pm.mean_bin_close_ms() * 1e-3);
    m_.detector_state->set(
        pipeline_->detector().state() == core::detector_state::degraded ? 1.0
                                                                        : 0.0);
    if (opts_.alerts) {
        m_.alerts_total->set_to(opts_.alerts->alerts_total());
        m_.alerts_suppressed->set_to(opts_.alerts->suppressed_total());
    }
}

void pipeline_bridge::on_lifecycle(const stream::lifecycle_event& ev) {
    using kind = stream::lifecycle_event::kind;
    switch (ev.type) {
        case kind::time_base_reset: {
            time_base_reset_data d;
            d.from_bin = ev.from_bin;
            d.to_bin = ev.to_bin;
            emitter_.emit(ev.from_bin, event_data(d));
            break;
        }
        case kind::quarantine: {
            quarantine_data d;
            d.frames = ev.frames_quarantined;
            d.records_lost = ev.records_lost;
            d.resync_bytes = ev.resync_bytes;
            emitter_.emit(last_bin_, event_data(d));
            break;
        }
        case kind::backpressure: {
            backpressure_data d;
            d.blocked_pushes = ev.blocked_pushes;
            d.queue_high_watermark = ev.queue_high_watermark;
            // The cumulative counter spans runs; the event carries this
            // run's delta only, so inc (not set_to) keeps them equal.
            if (m_.backpressure_blocked)
                m_.backpressure_blocked->inc(ev.blocked_pushes);
            emitter_.emit(last_bin_, event_data(d));
            break;
        }
    }
}

void pipeline_bridge::wire_checkpointer(stream::periodic_checkpointer& cp) {
    cp.on_checkpoint([this](const stream::checkpoint_written& info) {
        const stream::pipeline_metrics& pm = pipeline_->metrics();
        checkpoint_saved_data d;
        d.path = info.path;
        d.seq = info.seq;
        d.bins_emitted = pm.bins_emitted;
        d.records_in = pm.records_in;
        d.retries = info.retries;
        if (m_.checkpoints_written) m_.checkpoints_written->inc();
        if (m_.checkpoint_retries) m_.checkpoint_retries->inc(info.retries);
        emitter_.emit(last_bin_, event_data(std::move(d)));
    });
}

void pipeline_bridge::emit_checkpoint_restored(
    const stream::restore_report& report) {
    if (report.restored_path.empty()) return;
    const stream::pipeline_metrics& pm = pipeline_->metrics();
    checkpoint_restored_data d;
    d.path = report.restored_path;
    d.bins_emitted = pm.bins_emitted;
    d.records_in = pm.records_in;
    d.candidates = report.candidates;
    d.skipped = report.corrupt_skipped + report.truncated_skipped +
                report.mismatched_skipped + report.io_failed_skipped;
    last_bin_ = pm.bins_emitted;
    last_bin_close_ns_ = pm.bin_close_ns;
    last_records_accumulated_ = pm.records_accumulated;
    emitter_.emit(last_bin_, event_data(std::move(d)));
    sync_metrics();
}

std::string pipeline_bridge::healthz_json() const {
    // Reads only registry atomics and the alert manager's locked
    // totals: safe from the HTTP thread while the pipeline runs (the
    // raw pipeline_metrics struct is NOT touched here — it belongs to
    // the ingest thread).
    json_writer w;
    w.begin_object();
    w.key("status");
    w.value("ok");
    if (opts_.registry) {
        w.key("bins_emitted");
        w.value(m_.bins_emitted->value());
        w.key("records_in");
        w.value(m_.records_in->value());
        w.key("anomalies");
        w.value(m_.anomalies->value());
        w.key("events_emitted");
        w.value(m_.events_emitted->value());
        // Mirrors the tfd_detector_state gauge (registry atomic, not
        // the detector itself — this runs on the HTTP thread).
        w.key("detector_state");
        w.value(m_.detector_state->value() >= 1.0 ? "degraded" : "normal");
        w.key("drift_events");
        w.value(m_.drift_events->value());
        w.key("recalibrations");
        w.value(m_.recalibrations->value());
    }
    if (opts_.alerts) {
        w.key("alerts_total");
        w.value(opts_.alerts->alerts_total());
        w.key("alerts_suppressed");
        w.value(opts_.alerts->suppressed_total());
    }
    // Which SIMD tier this process dispatched to — set once at startup,
    // so reading the global here is as safe as reading a constant.
    w.key("kernel_isa");
    w.value(linalg::kernel_isa_name(linalg::active_kernel_isa()));
    w.key("schema_version");
    w.value(static_cast<std::uint64_t>(event_schema_version));
    w.end_object();
    return w.take();
}

}  // namespace tfd::obs
