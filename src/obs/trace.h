// tfd::obs — zero-dependency scoped trace spans.
//
// A stage_span times one scope and records the elapsed time into a
// latency_histogram on destruction. Two off-switches:
//
//   * runtime: constructing with a null histogram skips the clock reads
//     entirely (one branch) — a pipeline with no timers configured pays
//     nothing measurable;
//   * compile time: building with -DTFD_OBS_DISABLE_TRACE compiles the
//     span to an empty struct, so even the branch and the clock symbols
//     vanish from the hot paths.
//
// Spans are intentionally coarse (per frame, per push batch, per bin,
// per refit, per checkpoint write) — never per record — so a steady
// clock read per span is noise relative to the work it bounds.
#pragma once

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace tfd::obs {

#if defined(TFD_OBS_DISABLE_TRACE)

class stage_span {
public:
    explicit stage_span(latency_histogram*) noexcept {}
    void stop() noexcept {}
};

#else

class stage_span {
public:
    explicit stage_span(latency_histogram* h) noexcept : h_(h) {
        if (h_) start_ = now_ns();
    }
    stage_span(const stage_span&) = delete;
    stage_span& operator=(const stage_span&) = delete;
    ~stage_span() { stop(); }

    /// Record now instead of at scope exit (idempotent).
    void stop() noexcept {
        if (!h_) return;
        h_->record_ns(now_ns() - start_);
        h_ = nullptr;
    }

private:
    static std::uint64_t now_ns() noexcept {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

    latency_histogram* h_;
    std::uint64_t start_ = 0;
};

#endif  // TFD_OBS_DISABLE_TRACE

}  // namespace tfd::obs
