// tfd::obs — lock-cheap metrics registry with Prometheus-text
// exposition.
//
// The streaming pipeline already counts everything an operator needs
// (pipeline_metrics, quarantine_stats, checkpoint_save_stats) — but
// those counters live inside the owning objects and die with the
// process. This registry is the exposition surface: named counters,
// gauges and fixed-bucket latency histograms that an HTTP endpoint
// (obs/http.h) renders in the Prometheus text format, so any scraper
// can watch the daemon without bespoke tooling.
//
// Concurrency model: registration (get_counter / get_gauge /
// get_histogram) takes a mutex and returns a stable reference;
// updates on the returned objects are plain relaxed atomics — safe
// from any thread, no lock on the hot path. Exposition walks the
// registry under the registration mutex and reads the atomics, so a
// scrape concurrent with ingest sees a per-metric-consistent (not
// globally consistent) snapshot, which is what Prometheus expects.
//
// Adopted counters: the pipeline's counters are authoritative and
// monotone; the bridge (obs/bridge.h) copies them into registry
// counters via set_to() at every bin close rather than double-counting
// at each increment site. set_to() clamps to monotone so a scrape can
// never observe a counter going backwards.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace tfd::obs {

/// Monotone counter (Prometheus type: counter).
class counter {
public:
    void inc(std::uint64_t d = 1) noexcept {
        v_.fetch_add(d, std::memory_order_relaxed);
    }
    /// Adopt an externally maintained monotone value. Never moves the
    /// exposed value backwards (a racing reader must see a monotone
    /// series even if callers pass stale snapshots out of order).
    void set_to(std::uint64_t v) noexcept {
        std::uint64_t cur = v_.load(std::memory_order_relaxed);
        while (v > cur &&
               !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
        }
    }
    std::uint64_t value() const noexcept {
        return v_.load(std::memory_order_relaxed);
    }

private:
    std::atomic<std::uint64_t> v_{0};
};

/// Point-in-time value (Prometheus type: gauge).
class gauge {
public:
    void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
    double value() const noexcept { return v_.load(std::memory_order_relaxed); }

private:
    std::atomic<double> v_{0.0};
};

/// Fixed-bucket latency histogram (Prometheus type: histogram;
/// buckets are upper bounds in SECONDS, rendered cumulatively with
/// le="..." labels plus _sum and _count). Bounds are fixed at
/// construction — no resizing, no locking; record() is a few relaxed
/// atomic ops.
class latency_histogram {
public:
    /// Default bounds cover the pipeline's stage range (µs decode
    /// spans to multi-second checkpoint writes).
    static const std::vector<double>& default_bounds();

    explicit latency_histogram(std::vector<double> bounds_seconds = {});

    void record_seconds(double s) noexcept;
    void record_ns(std::uint64_t ns) noexcept {
        record_seconds(static_cast<double>(ns) * 1e-9);
    }

    std::uint64_t count() const noexcept {
        return count_.load(std::memory_order_relaxed);
    }
    double sum_seconds() const noexcept {
        return static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) *
               1e-9;
    }
    /// Finite upper bounds (seconds); the +Inf bucket is implicit.
    const std::vector<double>& bounds() const noexcept { return bounds_; }
    /// Non-cumulative count of bucket i (i == bounds().size() is +Inf).
    std::uint64_t bucket_count(std::size_t i) const noexcept {
        return counts_[i].load(std::memory_order_relaxed);
    }

private:
    std::vector<double> bounds_;  ///< ascending finite upper bounds
    std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;  ///< bounds+1
    std::atomic<std::uint64_t> sum_ns_{0};
    std::atomic<std::uint64_t> count_{0};
};

/// The per-stage latency histograms the streaming layers feed (via
/// obs/trace.h spans). A null member disables that stage's timing at
/// the cost of one branch. register_stage_timers() builds the
/// canonical set backed by a registry.
struct stage_timers {
    latency_histogram* decode = nullptr;            ///< codec frame decode
    latency_histogram* accumulate = nullptr;        ///< resolve + shard accumulate (per push)
    latency_histogram* bin_close = nullptr;         ///< harvest + detector push (per bin)
    latency_histogram* refit = nullptr;             ///< online detector model refit
    latency_histogram* checkpoint_write = nullptr;  ///< snapshot write attempt
};

/// Named-metric registry. Names must match the Prometheus charset
/// ([a-zA-Z_:][a-zA-Z0-9_:]*); get_* throws std::invalid_argument on a
/// bad name or on re-registering a name as a different type, and
/// returns the existing instance on an exact re-registration.
class metrics_registry {
public:
    metrics_registry() = default;
    metrics_registry(const metrics_registry&) = delete;
    metrics_registry& operator=(const metrics_registry&) = delete;

    counter& get_counter(const std::string& name, const std::string& help);
    gauge& get_gauge(const std::string& name, const std::string& help);
    latency_histogram& get_histogram(const std::string& name,
                                     const std::string& help,
                                     std::vector<double> bounds_seconds = {});

    /// Render every metric in the Prometheus text exposition format
    /// (text/plain; version=0.0.4), metrics sorted by name.
    std::string render_prometheus() const;

    std::size_t size() const;

private:
    enum class kind { counter, gauge, histogram };
    struct entry {
        std::string name;
        std::string help;
        kind type;
        std::unique_ptr<counter> c;
        std::unique_ptr<gauge> g;
        std::unique_ptr<latency_histogram> h;
    };
    entry& find_or_create(const std::string& name, const std::string& help,
                          kind type);

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<entry>> entries_;  ///< sorted by name
};

/// The canonical per-stage histogram set, registered as
/// tfd_stage_<stage>_seconds.
stage_timers register_stage_timers(metrics_registry& reg);

}  // namespace tfd::obs
