#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace tfd::obs {

void append_json_string(std::string& out, std::string_view s) {
    out += '"';
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x",
                                  static_cast<unsigned>(
                                      static_cast<unsigned char>(c)));
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

void append_json_double(std::string& out, double v) {
    if (!std::isfinite(v)) {
        out += "null";
        return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

void append_json_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

void append_json_i64(std::string& out, std::int64_t v) {
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    out.append(buf, res.ptr);
}

}  // namespace tfd::obs
