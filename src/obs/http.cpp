#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

#include "obs/alert.h"
#include "obs/metrics.h"
#include "obs/sink.h"

namespace tfd::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

void send_all(int fd, std::string_view data) {
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = send(fd, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            return;  // client gone; nothing useful to do
        }
        off += static_cast<std::size_t>(n);
    }
}

void respond(int fd, int status, const char* reason,
             const char* content_type, std::string_view body) {
    std::string head = "HTTP/1.1 " + std::to_string(status) + " " + reason +
                       "\r\nContent-Type: " + content_type +
                       "\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n";
    send_all(fd, head);
    send_all(fd, body);
}

}  // namespace

http_server::http_server(http_options opts) : opts_(std::move(opts)) {
    if (pipe(wake_fd_) != 0)
        throw std::system_error(errno, std::generic_category(),
                                "http_server: pipe");
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        const int err = errno;
        close(wake_fd_[0]);
        close(wake_fd_[1]);
        wake_fd_[0] = wake_fd_[1] = -1;
        throw std::system_error(err, std::generic_category(),
                                "http_server: socket");
    }
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
        listen(listen_fd_, 16) != 0) {
        const int err = errno;
        close(listen_fd_);
        listen_fd_ = -1;
        close(wake_fd_[0]);
        close(wake_fd_[1]);
        wake_fd_[0] = wake_fd_[1] = -1;
        throw std::system_error(err, std::generic_category(),
                                "http_server: cannot bind port " +
                                    std::to_string(opts_.port));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
        0)
        port_ = ntohs(bound.sin_port);
    thread_ = std::thread([this] { serve(); });
}

http_server::~http_server() { stop(); }

void http_server::stop() {
    if (!thread_.joinable()) return;
    stopping_.store(true, std::memory_order_relaxed);
    // Wake the serve loop through the self-pipe instead of closing the
    // listener out from under it: closing here would free the fd number
    // while the thread may still be blocked on it, and a concurrently
    // opened socket could be recycled into that number and accepted
    // from. The fds are closed only after the thread has joined.
    for (;;) {
        const char byte = 0;
        const ssize_t n = write(wake_fd_[1], &byte, 1);
        if (n == 1 || (n < 0 && errno != EINTR)) break;
    }
    thread_.join();
    close(listen_fd_);
    listen_fd_ = -1;
    close(wake_fd_[0]);
    close(wake_fd_[1]);
    wake_fd_[0] = wake_fd_[1] = -1;
}

void http_server::serve() {
    for (;;) {
        pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_fd_[0], POLLIN, 0}};
        const int ready = poll(fds, 2, -1);
        if (ready < 0) {
            if (errno == EINTR) continue;
            return;
        }
        if (stopping_.load(std::memory_order_relaxed) ||
            (fds[1].revents & (POLLIN | POLLERR | POLLHUP)))
            return;
        if (!(fds[0].revents & POLLIN)) continue;
        const int fd = accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_relaxed)) return;
            if (errno == EINTR || errno == ECONNABORTED ||
                errno == EAGAIN || errno == EWOULDBLOCK)
                continue;
            return;  // listener is gone
        }
        // Bound how long a slow client can hold the single server
        // thread (this is a diagnostics endpoint, not a web server).
        timeval tv{};
        tv.tv_sec = opts_.recv_timeout_ms / 1000;
        tv.tv_usec = static_cast<long>(opts_.recv_timeout_ms % 1000) * 1000;
        setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        handle_connection(fd);
        close(fd);
    }
}

void http_server::handle_connection(int fd) {
    std::string req;
    char buf[2048];
    while (req.size() < kMaxRequestBytes &&
           req.find("\r\n\r\n") == std::string::npos &&
           req.find("\n\n") == std::string::npos) {
        const ssize_t n = recv(fd, buf, sizeof buf, 0);
        if (n <= 0) break;
        req.append(buf, static_cast<std::size_t>(n));
    }
    // Dispatch only on a complete header block. A partial buffer (the
    // recv timeout fired mid-request, the client closed early, or the
    // request overflowed kMaxRequestBytes) must not be parsed as a
    // request line — a truncated path that happens to contain two
    // spaces would be served as if it were what the client meant.
    if (req.find("\r\n\r\n") == std::string::npos &&
        req.find("\n\n") == std::string::npos) {
        if (req.empty()) return;  // nothing sent; just close
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        requests_.fetch_add(1, std::memory_order_relaxed);
        respond(fd, 408, "Request Timeout", "text/plain",
                "incomplete request\n");
        return;
    }
    const std::size_t line_end = req.find_first_of("\r\n");
    if (line_end == std::string::npos) return;  // not HTTP; just close
    const std::string line = req.substr(0, line_end);
    requests_.fetch_add(1, std::memory_order_relaxed);

    // "METHOD /path HTTP/1.x"
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        respond(fd, 400, "Bad Request", "text/plain", "bad request\n");
        return;
    }
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    if (method != "GET") {
        respond(fd, 405, "Method Not Allowed", "text/plain",
                "GET only\n");
        return;
    }

    if (path == "/metrics" && opts_.registry) {
        respond(fd, 200, "OK", "text/plain; version=0.0.4; charset=utf-8",
                opts_.registry->render_prometheus());
    } else if (path == "/healthz") {
        const std::string body =
            opts_.healthz ? opts_.healthz() : std::string("{\"status\":\"ok\"}");
        respond(fd, 200, "OK", "application/json", body);
    } else if (path == "/alerts" && opts_.alerts) {
        respond(fd, 200, "OK", "application/json", opts_.alerts->to_json());
    } else if (path == "/events/recent" && opts_.recent_events) {
        std::string body;
        for (const std::string& l : opts_.recent_events->recent()) {
            body += l;
            body += '\n';
        }
        respond(fd, 200, "OK", "application/x-ndjson", body);
    } else {
        respond(fd, 404, "Not Found", "text/plain", "not found\n");
    }
}

}  // namespace tfd::obs
