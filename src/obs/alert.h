// tfd::obs — alert manager: severity tiers, per-OD dedup/cooldown, and
// a ring-bucketed anomaly history.
//
// Raw anomaly events are the record of truth, but an operator paging
// surface needs less: *how bad* (severity from the SPE-vs-threshold
// ratio — the same quantity the Q-statistic test already computes),
// *is this new* (a per-OD cooldown so a multi-bin anomaly pages once,
// with escalation breaking through when severity rises), and *what
// happened lately* (a fixed ring of time buckets aggregating anomaly
// counts — the Vibration-Motor-Monitoring AnomalyHistoryTracker idiom:
// bucket index = (bin / bucket_bins) mod bucket_count, stale wraps
// detected by the stored start bin). The whole state is queryable as
// JSON over the HTTP endpoint (/alerts).
//
// Thread-safe: observe() runs on the pipeline thread, to_json()/
// history() on the HTTP thread.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace tfd::obs {

enum class severity : int { warning = 0, major = 1, critical = 2 };

/// Wire name ("warning" | "major" | "critical").
const char* severity_name(severity s) noexcept;

struct alert_options {
    /// spe/threshold at or above this is major (below: warning).
    double major_ratio = 2.0;
    /// spe/threshold at or above this is critical.
    double critical_ratio = 5.0;
    /// A repeat alert for the same OD within this many bins of the last
    /// delivered one is suppressed — unless its severity is strictly
    /// higher (escalation always breaks through). 0 disables dedup.
    std::size_t cooldown_bins = 6;
    /// History granularity: bins aggregated per bucket (12 x 5-minute
    /// bins = 1 hour).
    std::size_t bucket_bins = 12;
    /// Ring length (48 hourly buckets = 2 days of history).
    std::size_t bucket_count = 48;
};

/// What the manager decided about one anomalous bin.
struct alert_decision {
    severity sev = severity::warning;
    double ratio = 0.0;      ///< spe/threshold that produced `sev`
    bool suppressed = false; ///< deduped by the per-OD cooldown
};

/// One history bucket (aggregate over `bucket_bins` consecutive bins).
struct alert_bucket {
    std::uint64_t start_bin = 0;  ///< first bin the bucket covers
    std::uint64_t anomalies = 0;  ///< anomalous bins observed
    std::uint64_t delivered = 0;  ///< alerts that survived dedup
    std::uint64_t by_severity[3] = {0, 0, 0};
    double max_ratio = 0.0;
    int max_od = -1;  ///< OD of the worst anomaly in the bucket
};

/// One OD's most recent delivered alert (the dedup anchor).
struct active_alert {
    int od = -1;
    std::uint64_t bin = 0;
    severity sev = severity::warning;
    double ratio = 0.0;
};

class alert_manager {
public:
    /// Throws std::invalid_argument on zero bucket_bins/bucket_count or
    /// non-ascending severity ratios.
    explicit alert_manager(alert_options opts = {});

    /// Classify one anomalous bin. `threshold` <= 0 (a detector scoring
    /// before a threshold exists cannot happen, but a defensive caller
    /// might) is treated as critical with ratio 0.
    alert_decision observe(std::uint64_t bin, int od, double spe,
                           double threshold);

    std::uint64_t alerts_total() const;      ///< delivered (not suppressed)
    std::uint64_t suppressed_total() const;  ///< deduped by cooldown

    /// Valid buckets, oldest first.
    std::vector<alert_bucket> history() const;

    /// ODs whose last delivered alert is within cooldown of `now_bin`
    /// (the "currently firing" set).
    std::vector<active_alert> active(std::uint64_t now_bin) const;

    /// Full queryable state: totals, active alerts (relative to the
    /// newest observed bin), and the bucket ring.
    std::string to_json() const;

    const alert_options& options() const noexcept { return opts_; }

private:
    severity classify(double ratio) const noexcept;

    alert_options opts_;
    mutable std::mutex mu_;
    std::vector<alert_bucket> ring_;
    std::vector<bool> ring_valid_;
    std::unordered_map<int, active_alert> last_delivered_;
    std::uint64_t alerts_total_ = 0;
    std::uint64_t suppressed_total_ = 0;
    std::uint64_t newest_bin_ = 0;
    bool any_observed_ = false;
};

}  // namespace tfd::obs
