// tfd::obs — minimal JSON emission helpers.
//
// The observability layer serializes events, alert history and health
// payloads as JSON without any external dependency. This is an
// *emitter* only (the repo never parses JSON in C++); numbers are
// written with std::to_chars shortest-round-trip so a consumer reading
// the value back gets the bit-identical double — the event/metrics
// reconciliation contract depends on that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tfd::obs {

/// Append `s` as a JSON string literal (quotes + escapes) to `out`.
void append_json_string(std::string& out, std::string_view s);

/// Append a double with shortest-round-trip formatting. Non-finite
/// values (which JSON cannot represent) are emitted as null.
void append_json_double(std::string& out, double v);

/// Append an unsigned integer.
void append_json_u64(std::string& out, std::uint64_t v);

/// Append a signed integer.
void append_json_i64(std::string& out, std::int64_t v);

/// Incremental object/array writer over one growing string. Purely
/// syntactic (comma placement); nesting correctness is the caller's
/// job, which is fine for the handful of fixed shapes obs emits.
class json_writer {
public:
    std::string& out() noexcept { return out_; }
    std::string take() { return std::move(out_); }

    void begin_object() { punct('{'); }
    void end_object() { out_ += '}'; fresh_ = false; }
    void begin_array() { punct('['); }
    void end_array() { out_ += ']'; fresh_ = false; }

    /// Start a `"key":` inside the current object.
    void key(std::string_view k) {
        comma();
        append_json_string(out_, k);
        out_ += ':';
        fresh_ = true;
    }

    void value(std::string_view v) { comma(); append_json_string(out_, v); }
    void value(const char* v) { value(std::string_view(v)); }
    void value(double v) { comma(); append_json_double(out_, v); }
    void value(std::uint64_t v) { comma(); append_json_u64(out_, v); }
    void value(std::int64_t v) { comma(); append_json_i64(out_, v); }
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(bool v) { comma(); out_ += v ? "true" : "false"; }

private:
    void punct(char open) {
        comma();
        out_ += open;
        fresh_ = true;
    }
    void comma() {
        if (!fresh_ && !out_.empty()) out_ += ',';
        fresh_ = false;
    }

    std::string out_;
    bool fresh_ = true;  ///< next value is first in its container
};

}  // namespace tfd::obs
