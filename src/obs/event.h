// tfd::obs — the structured event stream.
//
// Everything the daemon used to printf becomes a typed event serialized
// as one JSON line (JSONL): anomalies with their full per-feature
// context, bin lifecycle, checkpoint saves/restores, quarantine,
// time-base resets, and backpressure. The contract is the ROADMAP's
// "operational surface" arc: everything the daemon knows, an external
// program can read — and the diagnosis arc (SENATUS-style root cause,
// "Am I Rare?" summarization) consumes exactly this record.
//
// Schema versioning: every line carries "v": obs::event_schema_version.
// Additive fields do not bump the version; removing or re-typing a
// field does. scripts/validate_events.py is the executable form of the
// schema table in src/obs/README.md.
//
// Reconciliation contract (pinned by tests/obs/reconcile_test.cpp):
// for a pipeline drained through obs::pipeline_bridge, the event totals
// reconcile exactly with pipeline_metrics — bin_closed events ==
// bins_emitted, the sum of their "records" == records_accumulated,
// anomaly events == anomalies, time_base_reset events ==
// time_base_resets, and the quarantine event sums == the folded
// quarantine counters.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "flow/flow_record.h"

namespace tfd::obs {

/// Bumped when an existing field is removed or re-typed (additive
/// changes ride on the same version).
inline constexpr int event_schema_version = 1;

enum class event_type : int {
    anomaly = 0,
    bin_closed = 1,
    checkpoint_saved = 2,
    checkpoint_restored = 3,
    quarantine = 4,
    time_base_reset = 5,
    backpressure = 6,
    drift = 7,
    recalibrated = 8,
    worker_restarted = 9,
};

/// Wire name of an event type ("anomaly", "bin_closed", ...).
const char* event_type_name(event_type t) noexcept;

/// One identified flow inside an anomaly event.
struct anomaly_flow {
    int od = -1;
    std::string origin;  ///< PoP names when the bridge knows the topology
    std::string dest;
    std::array<double, flow::feature_count> magnitude{};
    double spe_after = 0.0;
};

/// An anomalous scored bin, with the per-feature context the diagnosis
/// arc needs: the unit-norm residual direction h_tilde (the per-feature
/// entropy deltas of the top OD) and the recursively identified flows.
struct anomaly_data {
    int od = -1;  ///< top identified OD flow
    std::string origin;
    std::string dest;
    double spe = 0.0;
    double threshold = 0.0;
    double ratio = 0.0;        ///< spe / threshold (alert severity input)
    std::string severity;      ///< "warning" | "major" | "critical"
    bool suppressed = false;   ///< alert deduped by per-OD cooldown
    /// Verdict confidence (additive field, schema stays v1): 1.0
    /// normally, the detector's degraded_confidence while re-learning
    /// after a drift — low-confidence detections are delivered, not
    /// dropped.
    double confidence = 1.0;
    std::array<double, flow::feature_count> h_tilde{};
    std::vector<anomaly_flow> flows;
};

struct bin_closed_data {
    std::uint64_t records = 0;  ///< records accumulated into the bin
    bool empty = false;         ///< gap bin (no records)
    bool scored = false;        ///< false during detector warmup
    bool anomalous = false;
    std::uint64_t close_ns = 0;  ///< harvest + detector push latency
};

struct checkpoint_saved_data {
    std::string path;
    std::uint64_t seq = 0;           ///< checkpoint sequence number
    std::uint64_t bins_emitted = 0;  ///< pipeline cut position
    std::uint64_t records_in = 0;    ///< exact replay-skip position
    std::uint64_t retries = 0;       ///< extra save attempts this write
};

struct checkpoint_restored_data {
    std::string path;
    std::uint64_t bins_emitted = 0;
    std::uint64_t records_in = 0;
    std::uint64_t candidates = 0;  ///< checkpoint files considered
    std::uint64_t skipped = 0;     ///< invalid candidates passed over
};

/// Corrupt-frame quarantine summary for one run() drain (deltas, not
/// cumulative totals — summing all quarantine events reproduces the
/// pipeline counters).
struct quarantine_data {
    std::uint64_t frames = 0;
    std::uint64_t records_lost = 0;
    std::uint64_t resync_bytes = 0;
};

struct time_base_reset_data {
    std::uint64_t from_bin = 0;
    std::uint64_t to_bin = 0;
};

/// Backpressure summary for one run() drain (delta, like quarantine).
struct backpressure_data {
    std::uint64_t blocked_pushes = 0;
    std::uint64_t queue_high_watermark = 0;
};

/// A confirmed distribution shift (core/drift.h): the detector entered
/// its degraded re-learn state at this bin. New event type at v1.
struct drift_data {
    double ph = 0.0;                 ///< Page–Hinkley excursion at confirmation
    double alarm_rate = 0.0;         ///< watchdog alarm fraction at confirmation
    std::uint64_t relearn_bins = 0;  ///< length of the re-learn window starting now
};

/// Recalibration completed: the detector refit from the post-drift
/// window, re-estimated its threshold, and returned to normal.
struct recalibrated_data {
    double threshold = 0.0;           ///< the re-estimated Q-statistic threshold
    std::uint64_t bins_degraded = 0;  ///< bins spent in the degraded state
};

/// A dist shard worker crashed and was respawned (dist::shard_router
/// recovery). New event type at v1. `replayed` counts the retained
/// messages re-sent above the worker's resume floor — recovery is a
/// replay, so detections stay bit-identical and this event is the only
/// externally visible trace.
struct worker_restarted_data {
    std::uint64_t worker = 0;      ///< worker index in the fleet
    std::uint64_t restarts = 0;    ///< lifetime restarts of this slot
    std::uint64_t resume_seq = 0;  ///< replay floor granted on reconnect
    std::uint64_t replayed = 0;    ///< messages replayed after the floor
};

using event_data =
    std::variant<anomaly_data, bin_closed_data, checkpoint_saved_data,
                 checkpoint_restored_data, quarantine_data,
                 time_base_reset_data, backpressure_data, drift_data,
                 recalibrated_data, worker_restarted_data>;

/// One event. `seq` is assigned by the emitter (1-based, strictly
/// increasing per process); `bin` is the pipeline bin the event
/// describes (the cursor's bin for run-scoped events).
struct event {
    std::uint64_t seq = 0;
    std::uint64_t ts_unix_ms = 0;  ///< wall clock at emission
    std::uint64_t bin = 0;
    event_data data;  ///< the alternative determines the wire "type"
};

/// The event_type of `e.data`'s active alternative.
event_type type_of(const event& e) noexcept;

/// Serialize one event as a single JSON line (no trailing newline).
std::string to_jsonl(const event& e);

}  // namespace tfd::obs
