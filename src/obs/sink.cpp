#include "obs/sink.h"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <system_error>

#include "obs/metrics.h"

namespace tfd::obs {

// type_of() maps variant index -> event_type by value; keep the two
// declarations in lockstep.
static_assert(std::is_same_v<std::variant_alternative_t<0, event_data>,
                             anomaly_data>);
static_assert(std::is_same_v<std::variant_alternative_t<6, event_data>,
                             backpressure_data>);
static_assert(std::is_same_v<std::variant_alternative_t<7, event_data>,
                             drift_data>);
static_assert(std::is_same_v<std::variant_alternative_t<8, event_data>,
                             recalibrated_data>);

void memory_sink::emit(const event& e, std::string_view jsonl_line) {
    std::lock_guard lock(mu_);
    events_.push_back(e);
    lines_.emplace_back(jsonl_line);
}

std::vector<event> memory_sink::events() const {
    std::lock_guard lock(mu_);
    return events_;
}

std::vector<std::string> memory_sink::lines() const {
    std::lock_guard lock(mu_);
    return lines_;
}

std::size_t memory_sink::count() const {
    std::lock_guard lock(mu_);
    return events_.size();
}

std::vector<event> memory_sink::events_of(event_type t) const {
    std::lock_guard lock(mu_);
    std::vector<event> out;
    for (const event& e : events_)
        if (type_of(e) == t) out.push_back(e);
    return out;
}

file_sink::file_sink(const std::string& path)
    : out_(path, std::ios::app) {
    if (!out_)
        throw std::system_error(errno, std::generic_category(),
                                "file_sink: cannot open " + path);
}

void file_sink::emit(const event&, std::string_view jsonl_line) {
    if (!out_) {
        ++dropped_;
        return;
    }
    out_ << jsonl_line << '\n';
    out_.flush();
    if (!out_) ++dropped_;
}

void stream_sink::emit(const event&, std::string_view jsonl_line) {
    *out_ << jsonl_line << '\n';
}

void ring_sink::emit(const event&, std::string_view jsonl_line) {
    std::lock_guard lock(mu_);
    lines_.emplace_back(jsonl_line);
    if (lines_.size() > capacity_) lines_.pop_front();
    ++total_;
}

std::vector<std::string> ring_sink::recent() const {
    std::lock_guard lock(mu_);
    return {lines_.begin(), lines_.end()};
}

std::uint64_t ring_sink::total_emitted() const {
    std::lock_guard lock(mu_);
    return total_;
}

tcp_sink::tcp_sink(const std::string& host, std::uint16_t port,
                   std::uint64_t reconnect_cooldown_emits)
    : host_(host),
      service_(std::to_string(port)),
      cooldown_(reconnect_cooldown_emits == 0 ? 1 : reconnect_cooldown_emits) {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    const int rc = getaddrinfo(host_.c_str(), service_.c_str(), &hints, &res);
    if (rc != 0)
        throw std::system_error(
            std::make_error_code(std::errc::host_unreachable),
            "tcp_sink: cannot resolve " + host_ + ": " + gai_strerror(rc));
    int fd = -1;
    int err = ECONNREFUSED;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) {
            err = errno;
            continue;
        }
        if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        err = errno;
        close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    if (fd < 0)
        throw std::system_error(err, std::generic_category(),
                                "tcp_sink: cannot connect to " + host_ + ":" +
                                    service_);
    fd_ = fd;
}

tcp_sink::~tcp_sink() {
    if (fd_ >= 0) close(fd_);
}

int tcp_sink::try_connect() noexcept {
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    if (getaddrinfo(host_.c_str(), service_.c_str(), &hints, &res) != 0)
        return -1;
    int fd = -1;
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
        fd = socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
        if (fd < 0) continue;
        if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
        close(fd);
        fd = -1;
    }
    freeaddrinfo(res);
    return fd;
}

void tcp_sink::emit(const event&, std::string_view jsonl_line) {
    if (fd_ < 0) {
        // Disconnected: retry at most once per cooldown window. The
        // line that triggers a successful retry is delivered; every
        // line before it is counted lost.
        if (++emits_since_loss_ >= cooldown_) {
            emits_since_loss_ = 0;
            fd_ = try_connect();
            if (fd_ >= 0) ++reconnects_;
        }
        if (fd_ < 0) {
            ++dropped_;
            return;
        }
    }
    std::string line(jsonl_line);
    line += '\n';
    std::size_t off = 0;
    while (off < line.size()) {
        const ssize_t n = send(fd_, line.data() + off, line.size() - off,
                               MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            // Peer gone: drop this line, go into reconnect cooldown.
            close(fd_);
            fd_ = -1;
            emits_since_loss_ = 0;
            ++dropped_;
            return;
        }
        off += static_cast<std::size_t>(n);
    }
}

std::uint64_t event_emitter::emit(std::uint64_t bin, event_data data) {
    event e;
    e.seq = next_seq_++;
    e.ts_unix_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    e.bin = bin;
    e.data = std::move(data);
    ++emitted_;
    if (counter_) counter_->inc();
    if (sink_) sink_->emit(e, to_jsonl(e));
    return e.seq;
}

}  // namespace tfd::obs
