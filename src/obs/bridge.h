// tfd::obs — the bridge between the streaming layers and the
// observability surface.
//
// The pipeline, checkpointer and detector stay observability-agnostic:
// they expose observers (on_bin, on_lifecycle, on_checkpoint) and
// optional latency sinks, and this bridge turns what those observers
// see into the three operator surfaces:
//
//   * the structured event stream (obs/event.h) — one JSONL line per
//     anomaly / bin close / checkpoint / quarantine / reset /
//     backpressure, through whatever sink the caller plugged in;
//   * the metrics registry (obs/metrics.h) — pipeline_metrics counters
//     adopted via monotone set_to() at every bin close (the pipeline's
//     counters stay authoritative; the registry is the exposition
//     copy), plus the derived throughput/latency gauges;
//   * the alert manager (obs/alert.h) — every anomalous verdict is
//     graded and deduped, and the decision (severity, suppressed) is
//     stamped into the anomaly event itself.
//
// Wiring: the bridge installs the pipeline's on_lifecycle observer at
// construction (it is the only consumer of that hook). The bin observer
// is NOT installed — callers own pipeline.on_bin() (the daemon chains
// checkpointing and progress reporting there) and call
// bridge.observe_bin() from it. wire_checkpointer() installs the
// checkpointer's on_checkpoint observer.
//
// Reconciliation contract (pinned by tests/obs/reconcile_test.cpp):
// after a drain where every emitted bin passed through observe_bin(),
// event totals reconcile exactly with pipeline_metrics.
#pragma once

#include <cstdint>
#include <string>

#include "obs/alert.h"
#include "obs/event.h"
#include "obs/metrics.h"
#include "obs/sink.h"
#include "stream/checkpoint.h"
#include "stream/pipeline.h"

namespace tfd::net {
class topology;
}

namespace tfd::obs {

struct bridge_options {
    /// Destination for serialized events (tee_sink for several). Null
    /// disables event emission (metrics/alerts still update).
    event_sink* sink = nullptr;
    /// Registry to adopt pipeline counters + stage gauges into. Null
    /// disables metrics adoption.
    metrics_registry* registry = nullptr;
    /// Alert grading/dedup for anomalous verdicts. Null means every
    /// anomaly event carries severity from a default-graded decision
    /// computed inline (never suppressed).
    alert_manager* alerts = nullptr;
    /// When set, anomaly events carry PoP names for the OD pairs.
    const net::topology* topology = nullptr;
    /// First sequence number the emitter assigns (a resumed daemon can
    /// continue a previous run's sequence).
    std::uint64_t first_seq = 1;
};

/// The adopted-counter and gauge set the bridge maintains (see
/// src/obs/README.md for the full metric catalog).
class pipeline_bridge {
public:
    /// Installs `pipeline`'s on_lifecycle observer. The bridge must
    /// outlive the pipeline's last push()/run() call.
    pipeline_bridge(stream::stream_pipeline& pipeline, bridge_options opts);

    pipeline_bridge(const pipeline_bridge&) = delete;
    pipeline_bridge& operator=(const pipeline_bridge&) = delete;

    /// Call from the pipeline's on_bin observer, for every emitted bin:
    /// emits bin_closed (and anomaly, when the verdict is anomalous)
    /// and refreshes the registry from pipeline_metrics.
    void observe_bin(const stream::bin_result& r);

    /// Install the checkpointer's on_checkpoint observer: each
    /// successful write becomes a checkpoint_saved event.
    void wire_checkpointer(stream::periodic_checkpointer& cp);

    /// Emit a checkpoint_restored event for a startup restore (no-op
    /// when the report restored nothing).
    void emit_checkpoint_restored(const stream::restore_report& report);

    /// Copy the pipeline's counters into the registry now (observe_bin
    /// does this per bin; call this after a drain so final partial-bin
    /// state — quarantine folds, late drops past the last close — is
    /// exposed too).
    void sync_metrics();

    /// JSON health snapshot for the /healthz endpoint; safe to call
    /// from the HTTP thread (reads registry atomics only).
    std::string healthz_json() const;

    event_emitter& emitter() noexcept { return emitter_; }

private:
    void on_lifecycle(const stream::lifecycle_event& ev);
    void fill_od_names(int od, std::string& origin, std::string& dest) const;

    stream::stream_pipeline* pipeline_;
    bridge_options opts_;
    event_emitter emitter_;

    // Per-bin deltas need the previous cumulative values.
    std::uint64_t last_bin_close_ns_ = 0;
    std::uint64_t last_records_accumulated_ = 0;
    std::uint64_t last_bin_ = 0;

    // Bins spent degraded since the last drift event; counted per
    // observed bin (not bin-number arithmetic) so time-base resets
    // inside a re-learn window cannot corrupt the recalibrated event.
    std::uint64_t degraded_bins_ = 0;

    // Adopted registry metrics (null when no registry was given).
    struct adopted {
        counter* records_in = nullptr;
        counter* records_accumulated = nullptr;
        counter* records_late = nullptr;
        counter* records_reordered = nullptr;
        counter* records_dropped_bad_od = nullptr;
        counter* drops_unknown_ingress = nullptr;
        counter* drops_unresolvable_egress = nullptr;
        counter* bins_emitted = nullptr;
        counter* bins_empty = nullptr;
        counter* anomalies = nullptr;
        counter* time_base_resets = nullptr;
        counter* frames_quarantined = nullptr;
        counter* records_lost_corrupt = nullptr;
        counter* resync_bytes_skipped = nullptr;
        counter* backpressure_blocked = nullptr;
        counter* frames_reused = nullptr;
        counter* events_emitted = nullptr;
        counter* alerts_total = nullptr;
        counter* alerts_suppressed = nullptr;
        counter* checkpoints_written = nullptr;
        counter* checkpoint_retries = nullptr;
        counter* drift_events = nullptr;
        counter* recalibrations = nullptr;
        gauge* records_per_second = nullptr;
        gauge* bin_close_mean_seconds = nullptr;
        gauge* detector_state = nullptr;
        gauge* kernel_isa = nullptr;
    } m_;
};

}  // namespace tfd::obs
