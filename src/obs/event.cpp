#include "obs/event.h"

#include "obs/json.h"

namespace tfd::obs {

namespace {

void write_feature_array(
    json_writer& w, const std::array<double, flow::feature_count>& a) {
    w.begin_array();
    for (const double v : a) w.value(v);
    w.end_array();
}

struct payload_writer {
    json_writer& w;

    void operator()(const anomaly_data& d) {
        w.key("od");
        w.value(d.od);
        if (!d.origin.empty()) {
            w.key("origin");
            w.value(d.origin);
            w.key("dest");
            w.value(d.dest);
        }
        w.key("spe");
        w.value(d.spe);
        w.key("threshold");
        w.value(d.threshold);
        w.key("ratio");
        w.value(d.ratio);
        w.key("severity");
        w.value(d.severity);
        w.key("suppressed");
        w.value(d.suppressed);
        w.key("confidence");
        w.value(d.confidence);
        w.key("h_tilde");
        write_feature_array(w, d.h_tilde);
        w.key("flows");
        w.begin_array();
        for (const anomaly_flow& f : d.flows) {
            w.begin_object();
            w.key("od");
            w.value(f.od);
            if (!f.origin.empty()) {
                w.key("origin");
                w.value(f.origin);
                w.key("dest");
                w.value(f.dest);
            }
            w.key("magnitude");
            write_feature_array(w, f.magnitude);
            w.key("spe_after");
            w.value(f.spe_after);
            w.end_object();
        }
        w.end_array();
    }

    void operator()(const bin_closed_data& d) {
        w.key("records");
        w.value(d.records);
        w.key("empty");
        w.value(d.empty);
        w.key("scored");
        w.value(d.scored);
        w.key("anomalous");
        w.value(d.anomalous);
        w.key("close_ns");
        w.value(d.close_ns);
    }

    void operator()(const checkpoint_saved_data& d) {
        w.key("path");
        w.value(d.path);
        w.key("checkpoint_seq");
        w.value(d.seq);
        w.key("bins_emitted");
        w.value(d.bins_emitted);
        w.key("records_in");
        w.value(d.records_in);
        w.key("retries");
        w.value(d.retries);
    }

    void operator()(const checkpoint_restored_data& d) {
        w.key("path");
        w.value(d.path);
        w.key("bins_emitted");
        w.value(d.bins_emitted);
        w.key("records_in");
        w.value(d.records_in);
        w.key("candidates");
        w.value(d.candidates);
        w.key("skipped");
        w.value(d.skipped);
    }

    void operator()(const quarantine_data& d) {
        w.key("frames");
        w.value(d.frames);
        w.key("records_lost");
        w.value(d.records_lost);
        w.key("resync_bytes");
        w.value(d.resync_bytes);
    }

    void operator()(const time_base_reset_data& d) {
        w.key("from_bin");
        w.value(d.from_bin);
        w.key("to_bin");
        w.value(d.to_bin);
    }

    void operator()(const backpressure_data& d) {
        w.key("blocked_pushes");
        w.value(d.blocked_pushes);
        w.key("queue_high_watermark");
        w.value(d.queue_high_watermark);
    }

    void operator()(const drift_data& d) {
        w.key("ph");
        w.value(d.ph);
        w.key("alarm_rate");
        w.value(d.alarm_rate);
        w.key("relearn_bins");
        w.value(d.relearn_bins);
    }

    void operator()(const recalibrated_data& d) {
        w.key("threshold");
        w.value(d.threshold);
        w.key("bins_degraded");
        w.value(d.bins_degraded);
    }

    void operator()(const worker_restarted_data& d) {
        w.key("worker");
        w.value(d.worker);
        w.key("restarts");
        w.value(d.restarts);
        w.key("resume_seq");
        w.value(d.resume_seq);
        w.key("replayed");
        w.value(d.replayed);
    }
};

}  // namespace

const char* event_type_name(event_type t) noexcept {
    switch (t) {
        case event_type::anomaly: return "anomaly";
        case event_type::bin_closed: return "bin_closed";
        case event_type::checkpoint_saved: return "checkpoint_saved";
        case event_type::checkpoint_restored: return "checkpoint_restored";
        case event_type::quarantine: return "quarantine";
        case event_type::time_base_reset: return "time_base_reset";
        case event_type::backpressure: return "backpressure";
        case event_type::drift: return "drift";
        case event_type::recalibrated: return "recalibrated";
        case event_type::worker_restarted: return "worker_restarted";
    }
    return "unknown";
}

event_type type_of(const event& e) noexcept {
    return static_cast<event_type>(static_cast<int>(e.data.index()));
}

std::string to_jsonl(const event& e) {
    json_writer w;
    w.begin_object();
    w.key("v");
    w.value(static_cast<std::int64_t>(event_schema_version));
    w.key("seq");
    w.value(e.seq);
    w.key("ts_ms");
    w.value(e.ts_unix_ms);
    w.key("type");
    w.value(event_type_name(type_of(e)));
    w.key("bin");
    w.value(e.bin);
    std::visit(payload_writer{w}, e.data);
    w.end_object();
    return w.take();
}

}  // namespace tfd::obs
