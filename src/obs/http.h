// tfd::obs — minimal blocking HTTP exposition endpoint.
//
// One listener thread, one request per connection, close after the
// response: exactly enough HTTP for `curl` and a Prometheus scraper,
// with zero dependencies. Routes:
//
//   GET /metrics        Prometheus text exposition of the registry
//   GET /healthz        JSON health payload (caller-provided)
//   GET /alerts         alert_manager state (active + ring history)
//   GET /events/recent  the ring_sink's retained JSONL lines
//
// Anything else is 404; non-GET methods are 405. The server binds the
// loopback interface only — a metrics port is an operational surface,
// not a public one; front it with a real proxy to expose it wider.
//
// The handlers read atomics (registry), lock internally (alerts, ring)
// or call a caller-supplied snapshot function (healthz), so a scrape
// concurrent with ingest is safe by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace tfd::obs {

class metrics_registry;
class alert_manager;
class ring_sink;

struct http_options {
    /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read
    /// it back via port()).
    std::uint16_t port = 0;
    metrics_registry* registry = nullptr;  ///< /metrics (404 when null)
    alert_manager* alerts = nullptr;       ///< /alerts (404 when null)
    ring_sink* recent_events = nullptr;    ///< /events/recent (404 when null)
    /// /healthz body provider; must be safe to call from the server
    /// thread. Null serves a plain {"status":"ok"}.
    std::function<std::string()> healthz;
    /// How long one connection may sit without delivering a complete
    /// request header block before it is answered 408 and closed
    /// (SO_RCVTIMEO on the accepted socket).
    std::uint32_t recv_timeout_ms = 2000;
};

class http_server {
public:
    /// Binds + listens + starts the accept thread. Throws
    /// std::system_error when the port cannot be bound.
    explicit http_server(http_options opts);
    ~http_server();

    http_server(const http_server&) = delete;
    http_server& operator=(const http_server&) = delete;

    /// The bound port (the ephemeral one when opts.port was 0).
    std::uint16_t port() const noexcept { return port_; }

    /// Requests answered so far (any status, including 408s).
    std::uint64_t requests_served() const noexcept {
        return requests_.load(std::memory_order_relaxed);
    }

    /// Connections that sent some bytes but never a complete header
    /// block (recv timeout, early close, or an oversized request) —
    /// each was answered 408 and closed without dispatch.
    std::uint64_t requests_timed_out() const noexcept {
        return timeouts_.load(std::memory_order_relaxed);
    }

    /// Stop accepting and join the server thread (idempotent; the
    /// destructor calls it). The listener fd is closed only after the
    /// thread joins — the serve loop is woken through a self-pipe, so
    /// no concurrently recycled fd can ever be accepted from.
    void stop();

private:
    void serve();
    void handle_connection(int fd);

    http_options opts_;
    int listen_fd_ = -1;
    int wake_fd_[2] = {-1, -1};  ///< self-pipe: stop() -> serve() wakeup
    std::uint16_t port_ = 0;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> requests_{0};
    std::atomic<std::uint64_t> timeouts_{0};
};

}  // namespace tfd::obs
