// tfd::obs — pluggable event sinks and the sequencing emitter.
//
// A sink consumes one serialized event line at a time. The emitter
// serializes exactly once and hands every sink the same bytes, so a
// file sink, the in-memory ring behind /events/recent, and a test's
// memory sink all observe an identical stream.
//
// Threading: emit() is called from the thread driving the pipeline
// (push/finish/run and the checkpointer) — one writer. Sinks that are
// *read* from another thread (ring_sink by the HTTP server,
// memory_sink by a test thread) lock internally; write-only sinks
// (file, stream, tcp) do not.
//
// Failure policy: an event stream is telemetry, not ground truth — a
// sink that loses its backing (disk full, socket peer gone) drops
// lines and counts them instead of taking the daemon down. Dropped
// counts are exposed so the loss is visible.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/event.h"

namespace tfd::obs {

class counter;  // obs/metrics.h — optional emit counter hookup

/// Sink interface: one serialized line per event (no newline).
class event_sink {
public:
    virtual ~event_sink() = default;
    virtual void emit(const event& e, std::string_view jsonl_line) = 0;
};

/// Keeps every event (typed + serialized) in memory; the reconciliation
/// tests' instrument. Thread-safe.
class memory_sink : public event_sink {
public:
    void emit(const event& e, std::string_view jsonl_line) override;

    std::vector<event> events() const;
    std::vector<std::string> lines() const;
    std::size_t count() const;
    /// Events of one type, in emission order.
    std::vector<event> events_of(event_type t) const;

private:
    mutable std::mutex mu_;
    std::vector<event> events_;
    std::vector<std::string> lines_;
};

/// Appends lines to an owned file (append mode, one flush per line so
/// `tail -f` and a crash lose nothing). Throws std::system_error when
/// the file cannot be opened; write errors after that are counted, not
/// thrown.
class file_sink : public event_sink {
public:
    explicit file_sink(const std::string& path);

    void emit(const event& e, std::string_view jsonl_line) override;

    std::uint64_t dropped() const noexcept { return dropped_; }

private:
    std::ofstream out_;
    std::uint64_t dropped_ = 0;
};

/// Writes lines to a caller-owned std::ostream (stdout piping, tests).
class stream_sink : public event_sink {
public:
    explicit stream_sink(std::ostream& out) : out_(&out) {}

    void emit(const event& e, std::string_view jsonl_line) override;

private:
    std::ostream* out_;
};

/// Bounded ring of the most recent serialized lines; backs the HTTP
/// endpoint's /events/recent. Thread-safe.
class ring_sink : public event_sink {
public:
    explicit ring_sink(std::size_t capacity)
        : capacity_(capacity == 0 ? 1 : capacity) {}

    void emit(const event& e, std::string_view jsonl_line) override;

    /// Oldest-first copy of the retained lines.
    std::vector<std::string> recent() const;
    std::uint64_t total_emitted() const;

private:
    const std::size_t capacity_;
    mutable std::mutex mu_;
    std::deque<std::string> lines_;
    std::uint64_t total_ = 0;
};

/// Forwards each event to every registered sink, in registration order.
class tee_sink : public event_sink {
public:
    void add(event_sink* sink) {
        if (sink) sinks_.push_back(sink);
    }

    void emit(const event& e, std::string_view jsonl_line) override {
        for (event_sink* s : sinks_) s->emit(e, jsonl_line);
    }

private:
    std::vector<event_sink*> sinks_;
};

/// Connects to a TCP peer and writes lines. Connection failure at
/// construction throws std::system_error; a peer that goes away later
/// is survived, never a daemon crash — SIGPIPE is suppressed per send.
///
/// Reconnect policy: after losing the peer the sink counts each lost
/// line in `dropped()` and retries the connection at most once every
/// `reconnect_cooldown_emits` emit() calls (events are bin-paced, so
/// the cooldown is a bin count, not a wall-clock timer — deterministic
/// under test). A successful retry bumps `reconnects()` and resumes
/// delivery from the next line; lines dropped while disconnected are
/// gone (telemetry, not ground truth).
class tcp_sink : public event_sink {
public:
    tcp_sink(const std::string& host, std::uint16_t port,
             std::uint64_t reconnect_cooldown_emits = 16);
    ~tcp_sink() override;

    void emit(const event& e, std::string_view jsonl_line) override;

    std::uint64_t dropped() const noexcept { return dropped_; }
    std::uint64_t reconnects() const noexcept { return reconnects_; }
    bool connected() const noexcept { return fd_ >= 0; }

private:
    /// One resolve+connect attempt; returns the fd or -1 (never throws).
    int try_connect() noexcept;

    std::string host_;
    std::string service_;
    std::uint64_t cooldown_;
    std::uint64_t emits_since_loss_ = 0;
    int fd_ = -1;
    std::uint64_t dropped_ = 0;
    std::uint64_t reconnects_ = 0;
};

/// Assigns sequence numbers and wall-clock timestamps, serializes once,
/// and fans out to one sink (use tee_sink for several). A null sink
/// makes emit() a cheap no-op (events are still counted).
class event_emitter {
public:
    explicit event_emitter(event_sink* sink, std::uint64_t first_seq = 1)
        : sink_(sink), next_seq_(first_seq) {}

    /// Stamp seq + timestamp, serialize, emit. Returns the assigned seq.
    std::uint64_t emit(std::uint64_t bin, event_data data);

    std::uint64_t emitted() const noexcept { return emitted_; }

    /// Optional registry counter bumped once per emitted event.
    void count_into(counter* c) noexcept { counter_ = c; }

private:
    event_sink* sink_;
    std::uint64_t next_seq_;
    std::uint64_t emitted_ = 0;
    counter* counter_ = nullptr;
};

}  // namespace tfd::obs
