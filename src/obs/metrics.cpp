#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/json.h"

namespace tfd::obs {

namespace {

bool valid_metric_name(const std::string& name) {
    if (name.empty()) return false;
    const auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
               c == ':';
    };
    if (!head(name[0])) return false;
    for (const char c : name)
        if (!head(c) && !(c >= '0' && c <= '9')) return false;
    return true;
}

void append_prom_double(std::string& out, double v) {
    if (std::isnan(v)) {
        out += "NaN";
    } else if (std::isinf(v)) {
        out += v > 0 ? "+Inf" : "-Inf";
    } else {
        append_json_double(out, v);  // shortest round-trip decimal
    }
}

}  // namespace

const std::vector<double>& latency_histogram::default_bounds() {
    // µs-scale decode spans up to multi-second checkpoint writes; the
    // extra resolution between 1 ms and 100 ms is where bin close and
    // refit latencies live at Abilene scale.
    static const std::vector<double> b = {
        1e-5, 1e-4, 2.5e-4, 5e-4, 1e-3,  2.5e-3, 5e-3, 1e-2,
        2.5e-2, 5e-2, 0.1,  0.25, 0.5,  1.0,    2.5,  10.0};
    return b;
}

latency_histogram::latency_histogram(std::vector<double> bounds_seconds)
    : bounds_(bounds_seconds.empty() ? default_bounds()
                                     : std::move(bounds_seconds)) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
        throw std::invalid_argument(
            "latency_histogram: bucket bounds must be strictly ascending");
    counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i] = 0;
}

void latency_histogram::record_seconds(double s) noexcept {
    if (!(s >= 0.0)) s = 0.0;  // negative / NaN clock glitches clamp to 0
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), s);
    const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
    counts_[idx].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(static_cast<std::uint64_t>(s * 1e9 + 0.5),
                      std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
}

metrics_registry::entry& metrics_registry::find_or_create(
    const std::string& name, const std::string& help, kind type) {
    if (!valid_metric_name(name))
        throw std::invalid_argument("metrics_registry: invalid metric name '" +
                                    name + "'");
    std::lock_guard lock(mu_);
    const auto it = std::lower_bound(
        entries_.begin(), entries_.end(), name,
        [](const std::unique_ptr<entry>& e, const std::string& n) {
            return e->name < n;
        });
    if (it != entries_.end() && (*it)->name == name) {
        if ((*it)->type != type)
            throw std::invalid_argument(
                "metrics_registry: '" + name +
                "' already registered as a different type");
        return **it;
    }
    auto e = std::make_unique<entry>();
    e->name = name;
    e->help = help;
    e->type = type;
    return **entries_.insert(it, std::move(e));
}

counter& metrics_registry::get_counter(const std::string& name,
                                       const std::string& help) {
    entry& e = find_or_create(name, help, kind::counter);
    if (!e.c) e.c = std::make_unique<counter>();
    return *e.c;
}

gauge& metrics_registry::get_gauge(const std::string& name,
                                   const std::string& help) {
    entry& e = find_or_create(name, help, kind::gauge);
    if (!e.g) e.g = std::make_unique<gauge>();
    return *e.g;
}

latency_histogram& metrics_registry::get_histogram(
    const std::string& name, const std::string& help,
    std::vector<double> bounds_seconds) {
    entry& e = find_or_create(name, help, kind::histogram);
    if (!e.h) e.h = std::make_unique<latency_histogram>(std::move(bounds_seconds));
    return *e.h;
}

std::size_t metrics_registry::size() const {
    std::lock_guard lock(mu_);
    return entries_.size();
}

std::string metrics_registry::render_prometheus() const {
    std::lock_guard lock(mu_);
    std::string out;
    out.reserve(entries_.size() * 96);
    for (const auto& ep : entries_) {
        const entry& e = *ep;
        if (!e.help.empty()) {
            out += "# HELP ";
            out += e.name;
            out += ' ';
            out += e.help;
            out += '\n';
        }
        out += "# TYPE ";
        out += e.name;
        out += e.type == kind::counter    ? " counter\n"
               : e.type == kind::gauge    ? " gauge\n"
                                          : " histogram\n";
        switch (e.type) {
            case kind::counter:
                out += e.name;
                out += ' ';
                append_json_u64(out, e.c->value());
                out += '\n';
                break;
            case kind::gauge:
                out += e.name;
                out += ' ';
                append_prom_double(out, e.g->value());
                out += '\n';
                break;
            case kind::histogram: {
                const latency_histogram& h = *e.h;
                std::uint64_t cum = 0;
                for (std::size_t i = 0; i < h.bounds().size(); ++i) {
                    cum += h.bucket_count(i);
                    out += e.name;
                    out += "_bucket{le=\"";
                    append_prom_double(out, h.bounds()[i]);
                    out += "\"} ";
                    append_json_u64(out, cum);
                    out += '\n';
                }
                cum += h.bucket_count(h.bounds().size());
                out += e.name;
                out += "_bucket{le=\"+Inf\"} ";
                append_json_u64(out, cum);
                out += '\n';
                out += e.name;
                out += "_sum ";
                append_prom_double(out, h.sum_seconds());
                out += '\n';
                out += e.name;
                out += "_count ";
                append_json_u64(out, h.count());
                out += '\n';
                break;
            }
        }
    }
    return out;
}

stage_timers register_stage_timers(metrics_registry& reg) {
    stage_timers t;
    t.decode = &reg.get_histogram("tfd_stage_decode_seconds",
                                  "Codec frame decode latency.");
    t.accumulate =
        &reg.get_histogram("tfd_stage_accumulate_seconds",
                           "Resolve + shard accumulation latency per push.");
    t.bin_close = &reg.get_histogram(
        "tfd_stage_bin_close_seconds",
        "Bin close latency (harvest + detector push) per emitted bin.");
    t.refit = &reg.get_histogram("tfd_stage_refit_seconds",
                                 "Online detector model refit latency.");
    t.checkpoint_write =
        &reg.get_histogram("tfd_stage_checkpoint_write_seconds",
                           "Checkpoint snapshot write latency per attempt.");
    return t;
}

}  // namespace tfd::obs
