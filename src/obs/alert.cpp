#include "obs/alert.h"

#include <algorithm>
#include <stdexcept>

#include "obs/json.h"

namespace tfd::obs {

const char* severity_name(severity s) noexcept {
    switch (s) {
        case severity::warning: return "warning";
        case severity::major: return "major";
        case severity::critical: return "critical";
    }
    return "unknown";
}

alert_manager::alert_manager(alert_options opts) : opts_(opts) {
    if (opts_.bucket_bins == 0 || opts_.bucket_count == 0)
        throw std::invalid_argument(
            "alert_manager: bucket_bins and bucket_count must be > 0");
    if (!(opts_.major_ratio > 1.0) ||
        !(opts_.critical_ratio > opts_.major_ratio))
        throw std::invalid_argument(
            "alert_manager: need 1 < major_ratio < critical_ratio");
    ring_.resize(opts_.bucket_count);
    ring_valid_.assign(opts_.bucket_count, false);
}

severity alert_manager::classify(double ratio) const noexcept {
    if (ratio >= opts_.critical_ratio) return severity::critical;
    if (ratio >= opts_.major_ratio) return severity::major;
    return severity::warning;
}

alert_decision alert_manager::observe(std::uint64_t bin, int od, double spe,
                                      double threshold) {
    alert_decision d;
    if (threshold > 0.0) {
        d.ratio = spe / threshold;
        d.sev = classify(d.ratio);
    } else {
        // No live threshold: cannot grade, assume the worst.
        d.ratio = 0.0;
        d.sev = severity::critical;
    }

    std::lock_guard lock(mu_);
    newest_bin_ = any_observed_ ? std::max(newest_bin_, bin) : bin;
    any_observed_ = true;

    // Per-OD dedup: a repeat within the cooldown window is suppressed
    // unless it escalates to a strictly higher severity.
    const auto it = last_delivered_.find(od);
    if (opts_.cooldown_bins > 0 && it != last_delivered_.end() &&
        bin >= it->second.bin &&
        bin - it->second.bin <= opts_.cooldown_bins &&
        d.sev <= it->second.sev) {
        d.suppressed = true;
        ++suppressed_total_;
    } else {
        last_delivered_[od] = active_alert{od, bin, d.sev, d.ratio};
        ++alerts_total_;
    }

    // Ring bucket (AnomalyHistoryTracker idiom): fixed slot by bin,
    // lazily reset when a wrap reuses the slot for a newer window.
    const std::uint64_t start =
        (bin / opts_.bucket_bins) * opts_.bucket_bins;
    const std::size_t idx =
        static_cast<std::size_t>(bin / opts_.bucket_bins) % opts_.bucket_count;
    alert_bucket& b = ring_[idx];
    if (!ring_valid_[idx] || b.start_bin != start) {
        b = alert_bucket{};
        b.start_bin = start;
        ring_valid_[idx] = true;
    }
    ++b.anomalies;
    if (!d.suppressed) ++b.delivered;
    ++b.by_severity[static_cast<int>(d.sev)];
    if (d.ratio >= b.max_ratio) {
        b.max_ratio = d.ratio;
        b.max_od = od;
    }
    return d;
}

std::uint64_t alert_manager::alerts_total() const {
    std::lock_guard lock(mu_);
    return alerts_total_;
}

std::uint64_t alert_manager::suppressed_total() const {
    std::lock_guard lock(mu_);
    return suppressed_total_;
}

std::vector<alert_bucket> alert_manager::history() const {
    std::lock_guard lock(mu_);
    std::vector<alert_bucket> out;
    for (std::size_t i = 0; i < ring_.size(); ++i)
        if (ring_valid_[i]) out.push_back(ring_[i]);
    std::sort(out.begin(), out.end(),
              [](const alert_bucket& a, const alert_bucket& b) {
                  return a.start_bin < b.start_bin;
              });
    return out;
}

std::vector<active_alert> alert_manager::active(std::uint64_t now_bin) const {
    std::lock_guard lock(mu_);
    std::vector<active_alert> out;
    for (const auto& [od, a] : last_delivered_)
        if (now_bin >= a.bin && now_bin - a.bin <= opts_.cooldown_bins)
            out.push_back(a);
    std::sort(out.begin(), out.end(),
              [](const active_alert& a, const active_alert& b) {
                  return a.od < b.od;
              });
    return out;
}

std::string alert_manager::to_json() const {
    // Snapshot under the lock, format outside it.
    std::uint64_t alerts, suppressed, now_bin;
    {
        std::lock_guard lock(mu_);
        alerts = alerts_total_;
        suppressed = suppressed_total_;
        now_bin = newest_bin_;
    }
    const std::vector<active_alert> act = active(now_bin);
    const std::vector<alert_bucket> hist = history();

    json_writer w;
    w.begin_object();
    w.key("alerts_total");
    w.value(alerts);
    w.key("suppressed_total");
    w.value(suppressed);
    w.key("newest_bin");
    w.value(now_bin);
    w.key("cooldown_bins");
    w.value(static_cast<std::uint64_t>(opts_.cooldown_bins));
    w.key("bucket_bins");
    w.value(static_cast<std::uint64_t>(opts_.bucket_bins));
    w.key("active");
    w.begin_array();
    for (const active_alert& a : act) {
        w.begin_object();
        w.key("od");
        w.value(a.od);
        w.key("bin");
        w.value(a.bin);
        w.key("severity");
        w.value(severity_name(a.sev));
        w.key("ratio");
        w.value(a.ratio);
        w.end_object();
    }
    w.end_array();
    w.key("buckets");
    w.begin_array();
    for (const alert_bucket& b : hist) {
        w.begin_object();
        w.key("start_bin");
        w.value(b.start_bin);
        w.key("anomalies");
        w.value(b.anomalies);
        w.key("delivered");
        w.value(b.delivered);
        w.key("warning");
        w.value(b.by_severity[0]);
        w.key("major");
        w.value(b.by_severity[1]);
        w.key("critical");
        w.value(b.by_severity[2]);
        w.key("max_ratio");
        w.value(b.max_ratio);
        w.key("max_od");
        w.value(b.max_od);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.take();
}

}  // namespace tfd::obs
