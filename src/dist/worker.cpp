#include "dist/worker.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "dist/protocol.h"
#include "io/snapshot.h"
#include "io/wire.h"
#include "stream/flow_codec.h"
#include "stream/shard.h"

namespace tfd::dist {

namespace {

constexpr std::uint32_t tag_worker_state = fourcc('D', 'W', 'S', 'T');
constexpr std::uint16_t worker_state_version = 1;

struct restored_state {
    std::uint64_t applied_seq = 0;
    std::optional<hello_message::stored_partial> partial;
};

/// Best-effort checkpoint restore: any failure (missing file, bad
/// fingerprint, stale session, wire error) means "start fresh" — the
/// router's replay buffer covers a worker with no durable state.
restored_state try_restore(const worker_options& o,
                           stream::od_shard_set& set) {
    restored_state st;
    if (o.state_dir.empty()) return st;
    try {
        auto snap = io::snapshot_reader::load_file(
            worker_state_path(o.state_dir, o.worker_id), o.fingerprint);
        if (snap.section_version(tag_worker_state) > worker_state_version)
            return st;
        io::wire_reader r = snap.section(tag_worker_state);
        if (r.u64() != o.session) return st;      // a previous run's state
        if (r.u32() != o.worker_id) return st;    // someone else's file
        const std::uint64_t applied = r.u64();
        std::optional<hello_message::stored_partial> partial;
        if (r.u8()) {
            hello_message::stored_partial p;
            p.ordinal = r.u64();
            const std::uint64_t n = r.varint();
            if (n > r.remaining()) return st;
            const auto span = r.bytes(static_cast<std::size_t>(n));
            p.bytes.assign(span.begin(), span.end());
            partial = std::move(p);
        }
        set.load(r);
        r.expect_end();
        st.applied_seq = applied;
        st.partial = std::move(partial);
    } catch (const std::exception&) {
        stream::od_shard_set fresh(o.od_count, 1);
        std::swap(set, fresh);
        return {};
    }
    return st;
}

/// Atomic checkpoint write via io::snapshot (write .tmp + rename).
/// Failures are swallowed: a missed checkpoint only widens replay.
void try_checkpoint(const worker_options& o, std::uint64_t applied_seq,
                    const std::optional<hello_message::stored_partial>& partial,
                    const stream::od_shard_set& set) {
    if (o.state_dir.empty()) return;
    try {
        io::wire_writer w;
        w.u64(o.session);
        w.u32(o.worker_id);
        w.u64(applied_seq);
        w.u8(partial ? 1 : 0);
        if (partial) {
            w.u64(partial->ordinal);
            w.varint(partial->bytes.size());
            w.bytes(partial->bytes);
        }
        set.save(w);
        io::snapshot_writer snap(o.fingerprint);
        snap.add_section(tag_worker_state, worker_state_version, w.take());
        snap.save_file(worker_state_path(o.state_dir, o.worker_id));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "tfd worker %u: checkpoint failed: %s\n",
                     o.worker_id, e.what());
    }
}

int connect_with_backoff(const worker_options& o) {
    std::uint32_t backoff = o.connect_backoff_initial_ms;
    for (std::uint32_t attempt = 0; attempt < o.connect_attempts; ++attempt) {
        const int fd = socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(o.port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
            if (o.io_timeout_ms > 0) {
                timeval tv{};
                tv.tv_sec = o.io_timeout_ms / 1000;
                tv.tv_usec = static_cast<long>(o.io_timeout_ms % 1000) * 1000;
                setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
                setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
            }
            const int one = 1;
            setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            return fd;
        }
        close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
        backoff = std::min(backoff * 2, o.connect_backoff_max_ms);
    }
    return -1;
}

void send_nak(int fd, dist_errc code, const char* detail) {
    try {
        send_message(fd, nak_message{code, detail});
    } catch (const dist_error&) {
        // The router learns from the close either way.
    }
}

}  // namespace

std::string worker_state_path(const std::string& dir,
                              std::uint32_t worker_id) {
    return dir + "/worker-" + std::to_string(worker_id) + ".tfss";
}

int worker_main(const worker_options& o) {
    try {
        stream::od_shard_set set(o.od_count, 1);
        restored_state st = try_restore(o, set);

        const int fd = connect_with_backoff(o);
        if (fd < 0) {
            std::fprintf(stderr, "tfd worker %u: cannot reach router\n",
                         o.worker_id);
            return 3;
        }

        hello_message hello;
        hello.worker_id = o.worker_id;
        hello.worker_count = o.worker_count;
        hello.od_count = static_cast<std::uint64_t>(o.od_count);
        hello.fingerprint = o.fingerprint;
        hello.session = o.session;
        hello.durable_seq = st.applied_seq;
        hello.partial = st.partial;
        send_message(fd, hello);

        std::vector<std::uint8_t> buf;
        const message first = read_message(fd, buf);
        if (const auto* nak = std::get_if<nak_message>(&first)) {
            std::fprintf(stderr, "tfd worker %u: rejected: %s\n", o.worker_id,
                         nak->detail.c_str());
            close(fd);
            return 2;
        }
        const auto* welcome = std::get_if<welcome_message>(&first);
        if (welcome == nullptr || welcome->session != o.session) {
            send_nak(fd, dist_errc::handshake_failed, "expected welcome");
            close(fd);
            return 2;
        }
        // resume_seq is the router's replay floor: everything up to it
        // is already reflected in our restored state (or was part of a
        // completed barrier and must stay forgotten).
        std::uint64_t applied = welcome->resume_seq;
        if (applied != st.applied_seq) {
            // Our checkpoint is behind a completed barrier (it held a
            // bin the router already merged) — drop the stale open bin.
            set.clear();
            st.partial.reset();
        }

        std::optional<hello_message::stored_partial> last_partial =
            std::move(st.partial);
        std::uint32_t frames_since_ckpt = 0;
        std::vector<flow::flow_record> records;

        for (;;) {
            message m;
            try {
                m = read_message(fd, buf);
            } catch (const dist_error& e) {
                close(fd);
                if (e.code() == dist_errc::malformed_message) return 4;
                return 3;  // router gone; it respawns us if it still runs
            }

            if (std::holds_alternative<bye_message>(m)) {
                close(fd);
                return 0;
            }

            if (const auto* d = std::get_if<data_message>(&m)) {
                if (d->seq != applied + 1) {
                    send_nak(fd, dist_errc::bad_sequence, "data seq gap");
                    close(fd);
                    return 4;
                }
                try {
                    records = stream::decode_records(d->codec);
                } catch (const stream::codec_error&) {
                    send_nak(fd, dist_errc::malformed_message, "codec");
                    close(fd);
                    return 4;
                }
                if (records.size() != d->ods.size()) {
                    send_nak(fd, dist_errc::malformed_message,
                             "record/od count skew");
                    close(fd);
                    return 4;
                }
                set.accumulate(records, d->ods);
                applied = d->seq;
                // Data for a new bin means the previous barrier
                // completed — the stored partial can never be asked
                // for again.
                last_partial.reset();
                if (o.checkpoint_every_frames > 0 &&
                    ++frames_since_ckpt >= o.checkpoint_every_frames &&
                    !o.state_dir.empty()) {
                    frames_since_ckpt = 0;
                    try_checkpoint(o, applied, last_partial, set);
                    send_message(fd, ack_message{applied});
                }
                continue;
            }

            if (const auto* c = std::get_if<close_bin_message>(&m)) {
                if (c->seq != applied + 1) {
                    send_nak(fd, dist_errc::bad_sequence, "close seq gap");
                    close(fd);
                    return 4;
                }
                applied = c->seq;
                io::wire_writer w;
                set.save(w);
                hello_message::stored_partial p;
                p.ordinal = c->ordinal;
                p.bytes = w.take();
                set.clear();
                last_partial = std::move(p);
                frames_since_ckpt = 0;
                // Checkpoint BEFORE the send: a crash in the gap is
                // recovered by re-offering the stored partial in the
                // next hello instead of replaying the whole bin.
                try_checkpoint(o, applied, last_partial, set);
                partial_message reply;
                reply.ordinal = last_partial->ordinal;
                reply.last_seq = applied;
                reply.durable_seq = o.state_dir.empty() ? 0 : applied;
                reply.partial = last_partial->bytes;
                send_message(fd, reply);
                continue;
            }

            send_nak(fd, dist_errc::malformed_message, "unexpected type");
            close(fd);
            return 4;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "tfd worker %u: fatal: %s\n", o.worker_id,
                     e.what());
        return 4;
    }
}

}  // namespace tfd::dist
