#include "dist/router.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <stdexcept>
#include <system_error>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "dist/worker.h"
#include "io/wire.h"
#include "stream/flow_codec.h"

namespace tfd::dist {

namespace {

std::uint64_t mint_session() {
    std::random_device rd;
    std::uint64_t s = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
    s ^= static_cast<std::uint64_t>(getpid()) << 16;
    s ^= static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    return s ? s : 1;
}

void set_socket_deadlines(int fd, std::uint32_t timeout_ms) {
    if (timeout_ms > 0) {
        timeval tv{};
        tv.tv_sec = timeout_ms / 1000;
        tv.tv_usec = static_cast<long>(timeout_ms % 1000) * 1000;
        setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void try_send_nak(int fd, dist_errc code, const std::string& detail) {
    try {
        send_message(fd, nak_message{code, detail});
    } catch (const dist_error&) {
    }
}

}  // namespace

shard_router::shard_router(int od_count, std::uint64_t config_fingerprint,
                           router_options opts)
    : od_count_(od_count),
      fingerprint_(config_fingerprint),
      opts_(std::move(opts)),
      collector_(od_count, 1) {
    if (opts_.workers == 0)
        throw std::invalid_argument("dist: workers must be >= 1");

    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::system_error(errno, std::generic_category(), "socket");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
        listen(listen_fd_, static_cast<int>(opts_.workers)) != 0) {
        const int err = errno;
        close(listen_fd_);
        throw std::system_error(err, std::generic_category(), "bind/listen");
    }
    socklen_t len = sizeof(addr);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    session_ = mint_session();

    slots_.resize(opts_.workers);
    try {
        for (std::uint32_t w = 0; w < opts_.workers; ++w) spawn(w);
        for (std::uint32_t w = 0; w < opts_.workers; ++w)
            accept_and_handshake();
    } catch (...) {
        for (auto& s : slots_) {
            if (s.fd >= 0) close(s.fd);
            if (s.pid > 0) {
                kill(s.pid, SIGKILL);
                waitpid(s.pid, nullptr, 0);
            }
        }
        close(listen_fd_);
        throw;
    }
    set_alive_gauge();
}

shard_router::~shard_router() {
    for (auto& s : slots_) {
        if (s.fd < 0) continue;
        try {
            send_message(s.fd, bye_message{});
        } catch (const dist_error&) {
        }
        close(s.fd);
        s.fd = -1;
    }
    for (auto& s : slots_) {
        if (s.pid > 0) {
            waitpid(s.pid, nullptr, 0);
            s.pid = -1;
        }
    }
    close(listen_fd_);
    set_alive_gauge();
}

int shard_router::worker_pid(std::uint32_t w) const {
    if (w >= slots_.size()) throw std::out_of_range("dist: worker index");
    return static_cast<int>(slots_[w].pid);
}

void shard_router::spawn(std::uint32_t w) {
    const pid_t pid = fork();
    if (pid < 0)
        throw std::system_error(errno, std::generic_category(), "fork");
    if (pid == 0) {
        // Child: drop every inherited router fd, run the worker, and
        // _exit so the parent's destructors/atexit never run here.
        close(listen_fd_);
        for (const auto& s : slots_)
            if (s.fd >= 0) close(s.fd);
        worker_options o;
        o.worker_id = w;
        o.worker_count = static_cast<std::uint32_t>(slots_.size());
        o.od_count = od_count_;
        o.fingerprint = fingerprint_;
        o.session = session_;
        o.port = port_;
        o.state_dir = opts_.state_dir;
        o.checkpoint_every_frames = opts_.checkpoint_every_frames;
        o.io_timeout_ms = 0;  // a worker just waits for its router
        _exit(worker_main(o));
    }
    slots_[w].pid = pid;
}

std::uint32_t shard_router::accept_and_handshake() {
    pollfd pl{listen_fd_, POLLIN, 0};
    for (;;) {
        const int rc = poll(&pl, 1, static_cast<int>(opts_.io_timeout_ms));
        if (rc > 0) break;
        if (rc == 0) throw dist_error(dist_errc::timed_out, "accept");
        if (errno != EINTR)
            throw std::system_error(errno, std::generic_category(), "poll");
    }
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0)
        throw dist_error(dist_errc::connection_lost, "accept failed");
    set_socket_deadlines(fd, opts_.io_timeout_ms);
    try {
        const message m = read_message(fd, read_buf_);
        const auto* h = std::get_if<hello_message>(&m);
        const auto reject = [&](dist_errc code, const std::string& detail) {
            try_send_nak(fd, code, detail);
            throw dist_error(code, detail);
        };
        if (h == nullptr)
            reject(dist_errc::handshake_failed, "expected hello");
        if (h->worker_id >= slots_.size())
            reject(dist_errc::unknown_worker,
                   "worker " + std::to_string(h->worker_id));
        slot& s = slots_[h->worker_id];
        if (s.fd >= 0)
            reject(dist_errc::unknown_worker, "already connected");
        if (h->session != session_)
            reject(dist_errc::session_mismatch, "stale session");
        if (h->fingerprint != fingerprint_)
            reject(dist_errc::fingerprint_mismatch, "config fingerprint");
        if (h->worker_count != slots_.size() ||
            h->od_count != static_cast<std::uint64_t>(od_count_))
            reject(dist_errc::malformed_message, "topology mismatch");
        if (h->durable_seq >= s.next_seq)
            reject(dist_errc::bad_sequence, "durable ahead of stream");

        // The worker's checkpoint is authoritative for what it holds;
        // the barrier floor is authoritative for what must stay
        // forgotten (that state was already merged).
        s.durable = h->durable_seq;
        const std::uint64_t resume = std::max(s.durable, s.barrier_floor);
        send_message(fd, welcome_message{session_, resume});
        if (h->partial) {
            partial_message p;
            p.ordinal = h->partial->ordinal;
            p.last_seq = h->durable_seq;
            p.durable_seq = h->durable_seq;
            p.partial = h->partial->bytes;
            s.stashed_partial = std::move(p);
        } else {
            s.stashed_partial.reset();
        }
        for (const auto& rm : s.retained) {
            if (rm.seq <= resume) continue;
            send_bytes(fd, rm.bytes);
            ++counters_.frames_replayed;
        }
        s.fd = fd;
        return h->worker_id;
    } catch (...) {
        close(fd);
        throw;
    }
}

void shard_router::recover(std::uint32_t w, const char* why) {
    slot& s = slots_[w];
    for (;;) {
        if (s.fd >= 0) {
            close(s.fd);
            s.fd = -1;
        }
        if (s.pid > 0) {
            kill(s.pid, SIGKILL);
            waitpid(s.pid, nullptr, 0);
            s.pid = -1;
        }
        set_alive_gauge();
        if (++s.restarts > opts_.max_restarts_per_worker)
            throw dist_error(dist_errc::worker_failed,
                             "worker " + std::to_string(w) +
                                 " exceeded restart budget (" + why + ")");
        ++counters_.worker_restarts;
        if (opts_.worker_restarts_total) opts_.worker_restarts_total->inc();
        const std::uint64_t replayed_before = counters_.frames_replayed;
        spawn(w);
        try {
            if (accept_and_handshake() != w) continue;
        } catch (const dist_error&) {
            continue;
        }
        set_alive_gauge();
        if (opts_.on_worker_restart) {
            worker_restart_info info;
            info.worker_id = w;
            info.restarts = s.restarts;
            info.resume_seq = std::max(s.durable, s.barrier_floor);
            info.replayed = counters_.frames_replayed - replayed_before;
            opts_.on_worker_restart(info);
        }
        return;
    }
}

void shard_router::send_retained(std::uint32_t w,
                                 std::vector<std::uint8_t> bytes) {
    slot& s = slots_[w];
    s.retained.push_back({s.next_seq, std::move(bytes)});
    ++s.next_seq;
    try {
        send_bytes(s.fd, s.retained.back().bytes);
    } catch (const dist_error& e) {
        // The message is already retained: recovery's replay delivers
        // it along with everything else above the resume floor.
        recover(w, e.what());
    }
}

void shard_router::drain_acks(std::uint32_t w) {
    slot& s = slots_[w];
    for (;;) {
        pollfd pl{s.fd, POLLIN, 0};
        const int rc = poll(&pl, 1, 0);
        if (rc < 0 && errno == EINTR) continue;
        if (rc <= 0 || !(pl.revents & (POLLIN | POLLERR | POLLHUP))) return;
        message m;
        try {
            m = read_message(s.fd, read_buf_);
        } catch (const dist_error& e) {
            recover(w, e.what());
            return;
        }
        if (const auto* a = std::get_if<ack_message>(&m)) {
            s.durable = std::max(s.durable, a->durable_seq);
            continue;
        }
        if (std::holds_alternative<nak_message>(m)) {
            ++counters_.naks_received;
            recover(w, "worker nak");
            return;
        }
        recover(w, "unexpected message between barriers");
        return;
    }
}

partial_message shard_router::await_partial(std::uint32_t w,
                                            std::uint64_t ordinal) {
    slot& s = slots_[w];
    for (;;) {
        if (s.stashed_partial) {
            partial_message p = std::move(*s.stashed_partial);
            s.stashed_partial.reset();
            // A stash for an older ordinal answers a barrier that
            // already completed — drop it and keep reading.
            if (p.ordinal == ordinal) return p;
        }
        message m;
        try {
            m = read_message(s.fd, read_buf_);
        } catch (const dist_error& e) {
            recover(w, e.what());
            continue;
        }
        if (const auto* a = std::get_if<ack_message>(&m)) {
            s.durable = std::max(s.durable, a->durable_seq);
            continue;
        }
        if (auto* p = std::get_if<partial_message>(&m)) {
            if (p->ordinal == ordinal) return std::move(*p);
            continue;  // duplicate from before a restart
        }
        if (std::holds_alternative<nak_message>(m)) {
            ++counters_.naks_received;
            recover(w, "worker nak at barrier");
            continue;
        }
        recover(w, "unexpected message at barrier");
    }
}

void shard_router::complete_barrier(std::uint32_t w,
                                    const partial_message& p) {
    slot& s = slots_[w];
    s.durable = std::max(s.durable, p.durable_seq);
    s.barrier_floor = s.close_seq;
    while (!s.retained.empty() && s.retained.front().seq <= s.barrier_floor)
        s.retained.pop_front();
    s.routed_open = 0;
    s.stashed_partial.reset();
}

void shard_router::set_alive_gauge() {
    if (opts_.workers_alive == nullptr) return;
    std::uint32_t alive = 0;
    for (const auto& s : slots_)
        if (s.fd >= 0) ++alive;
    opts_.workers_alive->set(alive);
}

void shard_router::accumulate(std::span<const flow::flow_record> records,
                              std::span<const int> ods) {
    if (records.size() != ods.size())
        throw std::invalid_argument("dist: records/ods size mismatch");
    const std::uint32_t W = static_cast<std::uint32_t>(slots_.size());
    for (auto& s : slots_) s.route.clear();
    for (std::size_t i = 0; i < ods.size(); ++i) {
        const int od = ods[i];
        if (od < 0) continue;  // resolver drop, counted upstream
        if (od >= od_count_) {
            ++bad_od_;
            continue;
        }
        slots_[static_cast<std::uint32_t>(od) % W].route.push_back(
            static_cast<std::uint32_t>(i));
    }
    for (std::uint32_t w = 0; w < W; ++w) {
        slot& s = slots_[w];
        if (s.route.empty()) continue;
        gather_records_.clear();
        gather_ods_.clear();
        for (const std::uint32_t i : s.route) {
            gather_records_.push_back(records[i]);
            gather_ods_.push_back(ods[i]);
        }
        data_message d;
        d.seq = s.next_seq;
        d.codec = stream::encode_records(gather_records_,
                                         {opts_.records_per_frame});
        d.ods = gather_ods_;
        const std::uint64_t n = s.route.size();
        send_retained(w, encode_message(message{std::move(d)}));
        ++counters_.frames_routed;
        s.routed_open += n;
        pending_ += n;
        // Opportunistically drain piled-up checkpoint acks so neither
        // side can deadlock on full TCP buffers.
        drain_acks(w);
    }
}

void shard_router::harvest(stream::bin_statistics& out) {
    if (pending_ == 0) {
        // Gap bin: nothing was routed, so the barrier is free — the
        // empty collector harvests the same zeros an idle in-process
        // od_shard_set would.
        collector_.harvest(out);
        return;
    }
    ++close_ordinal_;
    for (std::uint32_t w = 0; w < slots_.size(); ++w) {
        slot& s = slots_[w];
        if (s.routed_open == 0) continue;
        close_bin_message c;
        c.seq = s.next_seq;
        c.ordinal = close_ordinal_;
        s.close_seq = c.seq;
        send_retained(w, encode_message(message{c}));
    }
    // Merge in worker order — deterministic, and exact regardless of
    // order anyway: the slices are OD-disjoint, so every merge lands
    // in an empty cell (a bit-exact copy, see od_shard_set::merge_saved).
    for (std::uint32_t w = 0; w < slots_.size(); ++w) {
        slot& s = slots_[w];
        if (s.routed_open == 0) continue;
        const partial_message p = await_partial(w, close_ordinal_);
        io::wire_reader r(p.partial, "worker partial");
        collector_.merge_saved(r);
        complete_barrier(w, p);
    }
    collector_.harvest(out);
    pending_ = 0;
}

}  // namespace tfd::dist
