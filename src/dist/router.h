// tfd::dist — the shard router: the in-process side of multi-process
// OD sharding.
//
// A shard_router implements stream::dist_backend: the pipeline's
// accumulate/harvest boundary stays exactly where it was, but behind
// it the open bin lives in W forked worker processes, each owning the
// OD-residue slice { od : od % W == w }. The router
//
//   * routes each resolved batch by od % W, preserving input order
//     within every worker's stream (workers never re-resolve; the OD
//     indices travel on the wire next to the codec-framed records);
//   * numbers every message per worker and RETAINS the encoded bytes
//     until the bin-close barrier that covers them completes — a
//     worker acking a checkpoint shrinks how much is replayed after a
//     crash, never how much the router can replay (a lost worker
//     checkpoint must always be recoverable from the router's
//     buffer);
//   * at harvest, sends DCLS to every worker that got records this
//     bin, collects their od_shard_set::save() partials, merges them
//     in worker order into a local collector set (merge into empty
//     cells is a bit-exact copy), and harvests that — so detections
//     are bit-identical to the in-process path for any W (pinned by
//     tests/dist/parity_test.cpp for W in {1,2,4});
//   * respawns a crashed worker synchronously: SIGKILL leftovers,
//     reap, fork, handshake, replay retained messages above the
//     worker's resume floor (max of its durable checkpoint seq and
//     the last completed barrier), consuming a checkpoint-stored
//     partial offered in the hello when the barrier it answers is
//     still pending. A bin never closes approximately: either every
//     partial arrives (possibly after restarts) or harvest throws
//     dist_error{worker_failed} once max_restarts_per_worker is
//     exhausted.
//
// Bins with zero routed records skip the network entirely — the
// collector harvests local zeros, bit-identical to an idle
// od_shard_set.
//
// Threading: not thread-safe; drive it from the pipeline thread, like
// the od_shard_set it replaces. The router forks its workers at
// construction, so construct it BEFORE heavyweight state if you care
// about child copy-on-write size, and always before the pipeline that
// uses it (pipeline_options.dist is a non-owning pointer).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dist/protocol.h"
#include "obs/metrics.h"
#include "stream/pipeline.h"
#include "stream/shard.h"

namespace tfd::dist {

/// Passed to router_options::on_worker_restart after every successful
/// respawn + handshake.
struct worker_restart_info {
    std::uint32_t worker_id = 0;
    std::uint64_t restarts = 0;    ///< lifetime restarts of this slot
    std::uint64_t resume_seq = 0;  ///< replay floor granted in the welcome
    std::uint64_t replayed = 0;    ///< retained messages re-sent
};

struct router_options {
    /// Worker process count; OD od is owned by worker od % workers.
    std::uint32_t workers = 2;
    /// Worker checkpoint directory; "" disables worker checkpoints
    /// (crash recovery then always replays from the last barrier).
    std::string state_dir;
    /// Worker checkpoint cadence in data frames (0 = bin close only).
    std::uint32_t checkpoint_every_frames = 0;
    /// Restarts tolerated per worker before harvest/accumulate throw
    /// dist_error{worker_failed}.
    std::uint32_t max_restarts_per_worker = 5;
    /// Deadline for blocking router-side socket operations (accept,
    /// partial wait, handshake).
    std::uint32_t io_timeout_ms = 10000;
    /// Codec frame size for forwarded batches.
    std::size_t records_per_frame = 4096;
    /// Observability hooks (all optional). workers_alive is set to the
    /// number of connected workers; worker_restarts_total increments
    /// per respawn.
    obs::gauge* workers_alive = nullptr;
    obs::counter* worker_restarts_total = nullptr;
    std::function<void(const worker_restart_info&)> on_worker_restart;
};

/// Lifetime transport counters, for tests and bench reporting.
struct router_counters {
    std::uint64_t frames_routed = 0;    ///< DDAT messages sent (first send)
    std::uint64_t frames_replayed = 0;  ///< retained messages re-sent
    std::uint64_t worker_restarts = 0;
    std::uint64_t naks_received = 0;
};

class shard_router final : public stream::dist_backend {
public:
    /// Binds a loopback listener, forks `opts.workers` workers and
    /// completes every handshake before returning. Throws dist_error
    /// or std::system_error when the fleet cannot be brought up.
    shard_router(int od_count, std::uint64_t config_fingerprint,
                 router_options opts = {});

    /// Sends DBYE to every worker, closes the sockets and reaps the
    /// children.
    ~shard_router() override;

    shard_router(const shard_router&) = delete;
    shard_router& operator=(const shard_router&) = delete;

    // stream::dist_backend
    void accumulate(std::span<const flow::flow_record> records,
                    std::span<const int> ods) override;
    void harvest(stream::bin_statistics& out) override;
    std::uint64_t pending_records() const override { return pending_; }
    std::uint64_t records_dropped_bad_od() const override { return bad_od_; }

    // Introspection (tests, chaos harness, bench).
    std::uint32_t worker_count() const noexcept {
        return static_cast<std::uint32_t>(slots_.size());
    }
    /// Live child pid of worker `w` (-1 between respawns). The chaos
    /// test SIGKILLs this mid-bin.
    int worker_pid(std::uint32_t w) const;
    std::uint64_t session() const noexcept { return session_; }
    const router_counters& counters() const noexcept { return counters_; }

private:
    struct retained_msg {
        std::uint64_t seq = 0;
        std::vector<std::uint8_t> bytes;
    };
    struct slot {
        pid_t pid = -1;
        int fd = -1;
        std::uint64_t next_seq = 1;       ///< seq assigned to the next send
        std::uint64_t barrier_floor = 0;  ///< seq of the last completed DCLS
        std::uint64_t close_seq = 0;      ///< seq of the in-flight DCLS
        std::uint64_t durable = 0;        ///< worker's acked checkpoint seq
        std::uint64_t routed_open = 0;    ///< records routed this bin
        std::uint64_t restarts = 0;
        std::deque<retained_msg> retained;
        /// A checkpoint-stored partial offered in the latest hello.
        std::optional<partial_message> stashed_partial;
        /// Batch-routing scratch: input indices owned by this worker.
        std::vector<std::uint32_t> route;
    };

    void spawn(std::uint32_t w);
    /// Accept one connection and complete its handshake; returns the
    /// worker id it authenticated as. Throws dist_error on timeout or
    /// a rejected hello (the connection is closed first).
    std::uint32_t accept_and_handshake();
    /// Tear down worker `w` and bring a replacement up (spawn +
    /// handshake + replay), throwing worker_failed past the restart
    /// budget.
    void recover(std::uint32_t w, const char* why);
    /// Append to the retained buffer and send; a send failure triggers
    /// recover(), whose replay covers the new message.
    void send_retained(std::uint32_t w, std::vector<std::uint8_t> bytes);
    /// Drain DACKs that piled up in the socket buffer (prevents a
    /// worker blocking on its send while we block on ours).
    void drain_acks(std::uint32_t w);
    /// Block until worker `w` delivers the partial for `ordinal`,
    /// recovering through crashes.
    partial_message await_partial(std::uint32_t w, std::uint64_t ordinal);
    void complete_barrier(std::uint32_t w, const partial_message& p);
    void set_alive_gauge();

    int od_count_;
    std::uint64_t fingerprint_;
    router_options opts_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::uint64_t session_ = 0;
    std::uint64_t pending_ = 0;
    std::uint64_t bad_od_ = 0;
    std::uint64_t close_ordinal_ = 0;
    std::vector<slot> slots_;
    stream::od_shard_set collector_;
    router_counters counters_;
    // Reused scratch buffers.
    std::vector<flow::flow_record> gather_records_;
    std::vector<int> gather_ods_;
    std::vector<std::uint8_t> read_buf_;
};

}  // namespace tfd::dist
