// tfd::dist — the worker wire protocol.
//
// ROADMAP item 1 (multi-process OD sharding) splits the OD-residue
// shard space across worker *processes* connected to the router over
// loopback TCP. This header is the whole conversation between them:
// eight message types, each one io/wire.h section (u32 tag | u16
// version | u16 reserved | u64 len | u64 fnv1a64 | payload), so every
// byte on the wire is length-framed and checksummed by the same
// machinery the codec and checkpoint container already trust.
//
// Handshake (worker connects, router accepts):
//
//   worker → DHLO  worker_id/count, od_count, config fingerprint,
//                  session id, durable_seq (last checkpointed seq),
//                  and — when its checkpoint captured a bin-close
//                  partial whose delivery may have been lost — that
//                  partial's ordinal and bytes.
//   router → DWEL  session id + resume_seq: the worker discards any
//                  message numbered <= resume_seq it may see again.
//          | DNAK  typed rejection (version/fingerprint/session
//                  mismatch, ...) and the connection closes.
//
// Steady state (all router → worker, sequence-numbered per worker,
// consecutive from resume_seq + 1):
//
//   DDAT  one routed batch: codec-encoded flow records plus their
//         resolved OD indices (workers never re-resolve).
//   DCLS  bin-close barrier: the worker serializes its open-bin
//         od_shard_set state and answers with DPRT.
//   DBYE  clean shutdown; the worker exits 0.
//
// Worker → router, any time after the handshake:
//
//   DACK  durable_seq advanced (a checkpoint hit disk) — lets the
//         router shrink replay, never its retention (retention trims
//         only at completed barriers, so a lost worker checkpoint
//         can always be re-fed from the router's buffer).
//   DPRT  the barrier reply: bin ordinal, last applied seq, durable
//         seq, and the od_shard_set::save() partial bytes.
//   DNAK  typed protocol failure (bad sequence, malformed payload);
//         the worker exits and the router respawns it.
//
// Every parse validates its payload exhaustively and calls
// expect_end() at both the payload and the message envelope, so a
// one-byte length flip is a structural error, not a silent skew —
// tests/dist/protocol_test.cpp sweeps every single-byte corruption of
// every message type and requires "throws or decodes identically".
//
// The four-byte tags are pairwise >= 2 bytes apart in Hamming
// distance, so no single byte flip can turn one valid tag into
// another; a flipped tag is always an unknown-tag error.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "flow/flow_record.h"

namespace tfd::dist {

/// Bumped when any message layout changes; carried in the section
/// version field of every message. A peer speaking a newer version is
/// rejected with dist_errc::version_mismatch.
inline constexpr std::uint16_t protocol_version = 1;

/// Upper bound on one framed message (header + payload). A corrupt or
/// hostile length field can never make read_message() buffer more.
inline constexpr std::size_t max_message_bytes = std::size_t{1} << 26;

constexpr std::uint32_t fourcc(char a, char b, char c, char d) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16) |
           (static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24);
}

inline constexpr std::uint32_t tag_hello = fourcc('D', 'H', 'L', 'O');
inline constexpr std::uint32_t tag_welcome = fourcc('D', 'W', 'E', 'L');
inline constexpr std::uint32_t tag_nak = fourcc('D', 'N', 'A', 'K');
inline constexpr std::uint32_t tag_data = fourcc('D', 'D', 'A', 'T');
inline constexpr std::uint32_t tag_close_bin = fourcc('D', 'C', 'L', 'S');
inline constexpr std::uint32_t tag_partial = fourcc('D', 'P', 'R', 'T');
inline constexpr std::uint32_t tag_ack = fourcc('D', 'A', 'C', 'K');
inline constexpr std::uint32_t tag_bye = fourcc('D', 'B', 'Y', 'E');

/// Why a peer was rejected or a connection torn down (DNAK carries
/// one; dist_error carries one; each is pinned by a test).
enum class dist_errc : std::uint16_t {
    version_mismatch = 1,      ///< peer speaks a newer protocol
    fingerprint_mismatch = 2,  ///< worker built under a different config
    session_mismatch = 3,      ///< stale checkpoint / welcome from old run
    bad_sequence = 4,          ///< seq gap or replay below resume floor
    malformed_message = 5,     ///< payload failed validation
    unknown_worker = 6,        ///< hello from a worker id we did not spawn
    worker_failed = 7,         ///< restarts exhausted; the bin cannot close
    connection_lost = 8,       ///< peer EOF / reset / short read
    timed_out = 9,             ///< blocking read exceeded its deadline
    handshake_failed = 10,     ///< welcome never arrived / was a NAK
};

const char* to_string(dist_errc c) noexcept;

/// Thrown by the transport and parse layers; what() includes
/// to_string(code).
class dist_error : public std::runtime_error {
public:
    dist_error(dist_errc code, const std::string& detail);
    dist_errc code() const noexcept { return code_; }

private:
    dist_errc code_;
};

// ---- message structs ----

/// Worker → router, first message on every connection.
struct hello_message {
    std::uint32_t worker_id = 0;
    std::uint32_t worker_count = 0;
    std::uint64_t od_count = 0;
    std::uint64_t fingerprint = 0;
    std::uint64_t session = 0;
    /// Last sequence number whose effects the worker's checkpoint
    /// durably holds (0 when it has none).
    std::uint64_t durable_seq = 0;
    /// A bin-close partial captured in the checkpoint whose DPRT may
    /// never have reached the router (crash between checkpoint and
    /// send). The router consumes it if it is still waiting on this
    /// ordinal, otherwise ignores it.
    struct stored_partial {
        std::uint64_t ordinal = 0;
        std::vector<std::uint8_t> bytes;
    };
    std::optional<stored_partial> partial;
};

/// Router → worker, accepts the hello.
struct welcome_message {
    std::uint64_t session = 0;
    /// The worker treats resume_seq as already applied; replayed
    /// messages numbered <= resume_seq must not reach it (the router
    /// never sends them), and the next expected seq is resume_seq + 1.
    std::uint64_t resume_seq = 0;
};

/// Either direction: typed rejection. The sender closes after this.
struct nak_message {
    dist_errc code = dist_errc::malformed_message;
    std::string detail;
};

/// Router → worker: one routed batch for the open bin.
struct data_message {
    std::uint64_t seq = 0;
    /// Codec-framed flow records (stream/flow_codec encode_records).
    std::vector<std::uint8_t> codec;
    /// ods[i] is the resolved OD index of the i-th decoded record;
    /// same length as the codec batch (validated by the worker).
    std::vector<int> ods;
};

/// Router → worker: bin-close barrier for close `ordinal`.
struct close_bin_message {
    std::uint64_t seq = 0;
    std::uint64_t ordinal = 0;
};

/// Worker → router: the barrier reply for close `ordinal`.
struct partial_message {
    std::uint64_t ordinal = 0;
    std::uint64_t last_seq = 0;     ///< the DCLS seq the worker applied
    std::uint64_t durable_seq = 0;  ///< 0 when checkpointing is off
    std::vector<std::uint8_t> partial;  ///< od_shard_set::save() bytes
};

/// Worker → router: durable_seq advanced (checkpoint hit disk).
struct ack_message {
    std::uint64_t durable_seq = 0;
};

/// Router → worker: clean shutdown.
struct bye_message {};

using message = std::variant<hello_message, welcome_message, nak_message,
                             data_message, close_bin_message, partial_message,
                             ack_message, bye_message>;

// ---- pure encode / parse (no sockets; the corruption sweep drives
// ---- these directly) ----

/// One framed message: a single io::write_section with the type's tag
/// and version = protocol_version.
std::vector<std::uint8_t> encode_message(const message& m);

/// Parse exactly one framed message from `bytes`. Throws
/// dist_error{malformed_message} on any framing, checksum, tag,
/// version, length, or payload inconsistency — including trailing
/// bytes after the section (the transport hands in exactly one frame).
message parse_message(std::span<const std::uint8_t> bytes);

// ---- blocking socket transport ----

/// Write all of `bytes` to `fd`. Throws dist_error{connection_lost}
/// on EPIPE/reset, dist_error{timed_out} when SO_SNDTIMEO expires.
void send_bytes(int fd, std::span<const std::uint8_t> bytes);

/// encode_message + send_bytes.
void send_message(int fd, const message& m);

/// Read one framed message: the 24-byte section header, then the
/// payload (capped at max_message_bytes), then parse_message over the
/// whole frame. `buf` is reused across calls. Throws
/// dist_error{connection_lost} on EOF mid-frame or clean EOF,
/// dist_error{timed_out} when SO_RCVTIMEO expires,
/// dist_error{malformed_message} on parse failure.
message read_message(int fd, std::vector<std::uint8_t>& buf);

}  // namespace tfd::dist
