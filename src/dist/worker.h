// tfd::dist — the shard worker process.
//
// A worker owns the OD-residue slice { od : od % worker_count ==
// worker_id } of one open bin. It is deliberately near-stateless:
// its whole world is an od_shard_set for the current bin, rebuilt on
// demand either from its own checkpoint or from the router's retained
// replay buffer — which is what makes crash recovery bit-exact (see
// src/dist/README.md for the replay contract).
//
// worker_main() is what a forked child runs: connect to the router's
// loopback port with capped exponential backoff, restore the
// checkpoint if one is valid, handshake (DHLO/DWEL), then apply
// messages until DBYE or the connection dies. The accumulation path
// is exactly od_shard_set::accumulate with shards = 1, so results are
// bit-identical to in-process accumulation of the same record
// sequence by construction.
//
// Checkpointing (optional, state_dir != ""): an io::snapshot with one
// DWST section holding {session, worker_id, applied_seq, optional
// bin-close partial, open-bin od_shard_set state}. Written atomically
// every checkpoint_every_frames data frames (followed by a DACK so
// the router can shrink replay) and at every bin close — there the
// partial bytes are stored BEFORE the DPRT is sent, so a crash
// between checkpoint and send is recovered by re-offering the stored
// partial in the next DHLO.
//
// Fork safety: the parent constructs the router (and its threads)
// first, but a 1-shard od_shard_set never touches the shared thread
// pool (linalg::thread_pool::run() executes single-task work inline),
// so the forked child never blocks on a mutex the fork snapshotted.
#pragma once

#include <cstdint>
#include <string>

namespace tfd::dist {

struct worker_options {
    std::uint32_t worker_id = 0;
    std::uint32_t worker_count = 1;
    int od_count = 0;
    /// Pipeline config fingerprint; must match the router's and gates
    /// checkpoint restores.
    std::uint64_t fingerprint = 0;
    /// Run identity minted by the router; a checkpoint from another
    /// session is discarded, a welcome from another session is fatal.
    std::uint64_t session = 0;
    /// Router's loopback TCP port.
    std::uint16_t port = 0;
    /// Checkpoint directory; "" disables checkpointing (recovery then
    /// relies entirely on router replay — still bit-exact).
    std::string state_dir;
    /// Checkpoint cadence in applied data frames; 0 = only at bin
    /// close.
    std::uint32_t checkpoint_every_frames = 0;
    /// Connect retry policy: capped exponential backoff.
    std::uint32_t connect_attempts = 40;
    std::uint32_t connect_backoff_initial_ms = 5;
    std::uint32_t connect_backoff_max_ms = 250;
    /// SO_RCVTIMEO/SO_SNDTIMEO on the established connection; 0 =
    /// block forever (a worker with nothing to do just waits).
    std::uint32_t io_timeout_ms = 0;
};

/// The worker's checkpoint path inside `dir`.
std::string worker_state_path(const std::string& dir, std::uint32_t worker_id);

/// Run one worker to completion. Exit codes (the router logs them):
///   0  clean shutdown (DBYE)
///   2  handshake rejected (version/fingerprint/session NAK)
///   3  connection lost (router gone; the router respawns on its side)
///   4  protocol violation (bad sequence, malformed payload)
int worker_main(const worker_options& opts);

}  // namespace tfd::dist
