#include "dist/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include "io/wire.h"

namespace tfd::dist {

const char* to_string(dist_errc c) noexcept {
    switch (c) {
        case dist_errc::version_mismatch: return "version mismatch";
        case dist_errc::fingerprint_mismatch: return "fingerprint mismatch";
        case dist_errc::session_mismatch: return "session mismatch";
        case dist_errc::bad_sequence: return "bad sequence";
        case dist_errc::malformed_message: return "malformed message";
        case dist_errc::unknown_worker: return "unknown worker";
        case dist_errc::worker_failed: return "worker failed";
        case dist_errc::connection_lost: return "connection lost";
        case dist_errc::timed_out: return "timed out";
        case dist_errc::handshake_failed: return "handshake failed";
    }
    return "unknown";
}

dist_error::dist_error(dist_errc code, const std::string& detail)
    : std::runtime_error(std::string("dist: ") + to_string(code) +
                         (detail.empty() ? "" : ": " + detail)),
      code_(code) {}

namespace {

// Payload caps: a checksum collision is ~1 in 2^64, but validation
// should not depend on luck — every count and length is bounded
// before any allocation sized from it.
constexpr std::uint64_t max_ods_per_frame = 1u << 22;
constexpr std::uint64_t max_nak_detail = 4096;

struct payload_encoder {
    io::wire_writer w;

    std::vector<std::uint8_t> section(std::uint32_t tag) {
        std::vector<std::uint8_t> out;
        io::write_section(out, tag, protocol_version, w.data());
        return out;
    }

    std::vector<std::uint8_t> operator()(const hello_message& m) {
        w.u32(m.worker_id);
        w.u32(m.worker_count);
        w.u64(m.od_count);
        w.u64(m.fingerprint);
        w.u64(m.session);
        w.u64(m.durable_seq);
        w.u8(m.partial ? 1 : 0);
        if (m.partial) {
            w.u64(m.partial->ordinal);
            w.varint(m.partial->bytes.size());
            w.bytes(m.partial->bytes);
        }
        return section(tag_hello);
    }

    std::vector<std::uint8_t> operator()(const welcome_message& m) {
        w.u64(m.session);
        w.u64(m.resume_seq);
        return section(tag_welcome);
    }

    std::vector<std::uint8_t> operator()(const nak_message& m) {
        w.u16(static_cast<std::uint16_t>(m.code));
        w.varint(m.detail.size());
        w.bytes({reinterpret_cast<const std::uint8_t*>(m.detail.data()),
                 m.detail.size()});
        return section(tag_nak);
    }

    std::vector<std::uint8_t> operator()(const data_message& m) {
        w.u64(m.seq);
        w.varint(m.ods.size());
        w.varint(m.codec.size());
        w.bytes(m.codec);
        for (const int od : m.ods) w.svarint(od);
        return section(tag_data);
    }

    std::vector<std::uint8_t> operator()(const close_bin_message& m) {
        w.u64(m.seq);
        w.u64(m.ordinal);
        return section(tag_close_bin);
    }

    std::vector<std::uint8_t> operator()(const partial_message& m) {
        w.u64(m.ordinal);
        w.u64(m.last_seq);
        w.u64(m.durable_seq);
        w.varint(m.partial.size());
        w.bytes(m.partial);
        return section(tag_partial);
    }

    std::vector<std::uint8_t> operator()(const ack_message& m) {
        w.u64(m.durable_seq);
        return section(tag_ack);
    }

    std::vector<std::uint8_t> operator()(const bye_message&) {
        return section(tag_bye);
    }
};

[[noreturn]] void malformed(const char* what) {
    throw dist_error(dist_errc::malformed_message, what);
}

std::vector<std::uint8_t> read_blob(io::wire_reader& r, std::uint64_t cap,
                                    const char* what) {
    const std::uint64_t n = r.varint();
    if (n > cap || n > r.remaining()) malformed(what);
    const auto span = r.bytes(static_cast<std::size_t>(n));
    return {span.begin(), span.end()};
}

message parse_hello(io::wire_reader& r) {
    hello_message m;
    m.worker_id = r.u32();
    m.worker_count = r.u32();
    m.od_count = r.u64();
    m.fingerprint = r.u64();
    m.session = r.u64();
    m.durable_seq = r.u64();
    const std::uint8_t has_partial = r.u8();
    if (has_partial > 1) malformed("hello: bad partial flag");
    if (has_partial) {
        hello_message::stored_partial p;
        p.ordinal = r.u64();
        p.bytes = read_blob(r, max_message_bytes, "hello: partial too large");
        m.partial = std::move(p);
    }
    if (m.worker_count == 0 || m.worker_id >= m.worker_count)
        malformed("hello: worker id out of range");
    return m;
}

message parse_welcome(io::wire_reader& r) {
    welcome_message m;
    m.session = r.u64();
    m.resume_seq = r.u64();
    return m;
}

message parse_nak(io::wire_reader& r) {
    nak_message m;
    const std::uint16_t code = r.u16();
    if (code < static_cast<std::uint16_t>(dist_errc::version_mismatch) ||
        code > static_cast<std::uint16_t>(dist_errc::handshake_failed))
        malformed("nak: unknown code");
    m.code = static_cast<dist_errc>(code);
    const auto detail = read_blob(r, max_nak_detail, "nak: detail too long");
    m.detail.assign(detail.begin(), detail.end());
    return m;
}

message parse_data(io::wire_reader& r) {
    data_message m;
    m.seq = r.u64();
    const std::uint64_t n = r.varint();
    if (n == 0 || n > max_ods_per_frame) malformed("data: bad record count");
    m.codec = read_blob(r, max_message_bytes, "data: codec blob too large");
    m.ods.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::int64_t od = r.svarint();
        if (od < 0 || od > INT32_MAX) malformed("data: od out of range");
        m.ods.push_back(static_cast<int>(od));
    }
    return m;
}

message parse_close_bin(io::wire_reader& r) {
    close_bin_message m;
    m.seq = r.u64();
    m.ordinal = r.u64();
    return m;
}

message parse_partial(io::wire_reader& r) {
    partial_message m;
    m.ordinal = r.u64();
    m.last_seq = r.u64();
    m.durable_seq = r.u64();
    m.partial = read_blob(r, max_message_bytes, "partial: blob too large");
    return m;
}

message parse_ack(io::wire_reader& r) {
    ack_message m;
    m.durable_seq = r.u64();
    return m;
}

}  // namespace

std::vector<std::uint8_t> encode_message(const message& m) {
    return std::visit(payload_encoder{}, m);
}

message parse_message(std::span<const std::uint8_t> bytes) {
    try {
        io::wire_reader outer(bytes, "dist message");
        const io::section_view s = io::read_section(outer);
        outer.expect_end();  // transport hands in exactly one frame
        if (s.version > protocol_version)
            throw dist_error(dist_errc::version_mismatch,
                             "message version " + std::to_string(s.version));
        io::wire_reader r(s.payload, "dist payload");
        message m;
        switch (s.tag) {
            case tag_hello: m = parse_hello(r); break;
            case tag_welcome: m = parse_welcome(r); break;
            case tag_nak: m = parse_nak(r); break;
            case tag_data: m = parse_data(r); break;
            case tag_close_bin: m = parse_close_bin(r); break;
            case tag_partial: m = parse_partial(r); break;
            case tag_ack: m = parse_ack(r); break;
            case tag_bye: m = bye_message{}; break;
            default: malformed("unknown tag");
        }
        r.expect_end();
        return m;
    } catch (const dist_error&) {
        throw;
    } catch (const io::wire_error& e) {
        throw dist_error(dist_errc::malformed_message, e.what());
    }
}

// ---- blocking socket transport ----

void send_bytes(int fd, std::span<const std::uint8_t> bytes) {
    const std::uint8_t* p = bytes.data();
    std::size_t left = bytes.size();
    while (left > 0) {
        const ssize_t n = send(fd, p, left, MSG_NOSIGNAL);
        if (n > 0) {
            p += n;
            left -= static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
            throw dist_error(dist_errc::timed_out, "send");
        throw dist_error(dist_errc::connection_lost,
                         std::string("send: ") + std::strerror(errno));
    }
}

void send_message(int fd, const message& m) {
    send_bytes(fd, encode_message(m));
}

namespace {

void read_exact(int fd, std::uint8_t* dest, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t r = recv(fd, dest + got, n - got, 0);
        if (r > 0) {
            got += static_cast<std::size_t>(r);
            continue;
        }
        if (r == 0)
            throw dist_error(dist_errc::connection_lost, "peer closed");
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            throw dist_error(dist_errc::timed_out, "recv");
        throw dist_error(dist_errc::connection_lost,
                         std::string("recv: ") + std::strerror(errno));
    }
}

}  // namespace

message read_message(int fd, std::vector<std::uint8_t>& buf) {
    buf.resize(io::section_header_bytes);
    read_exact(fd, buf.data(), io::section_header_bytes);
    // Peek payload_bytes (offset 8, little-endian u64) to size the read.
    std::uint64_t payload_bytes = 0;
    for (int i = 7; i >= 0; --i)
        payload_bytes = (payload_bytes << 8) | buf[8 + static_cast<std::size_t>(i)];
    if (payload_bytes > max_message_bytes - io::section_header_bytes)
        throw dist_error(dist_errc::malformed_message,
                         "frame length " + std::to_string(payload_bytes));
    buf.resize(io::section_header_bytes + static_cast<std::size_t>(payload_bytes));
    read_exact(fd, buf.data() + io::section_header_bytes,
               static_cast<std::size_t>(payload_bytes));
    return parse_message(buf);
}

}  // namespace tfd::dist
