#include "net/routing.h"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace tfd::net {

router::router(const topology& topo) : n_(topo.pop_count()) {
    dist_.assign(static_cast<std::size_t>(n_) * n_, -1);
    parent_.assign(static_cast<std::size_t>(n_) * n_, -1);

    for (int src = 0; src < n_; ++src) {
        // BFS with deterministic neighbor order (sorted ids).
        std::vector<std::vector<int>> adj = topo.adjacency();
        for (auto& nb : adj) std::sort(nb.begin(), nb.end());

        auto d = [&](int v) -> int& { return dist_[index(src, v)]; };
        auto par = [&](int v) -> int& { return parent_[index(src, v)]; };

        std::queue<int> q;
        d(src) = 0;
        par(src) = src;
        q.push(src);
        while (!q.empty()) {
            const int u = q.front();
            q.pop();
            for (int v : adj[u]) {
                if (d(v) >= 0) continue;
                d(v) = d(u) + 1;
                par(v) = u;
                q.push(v);
            }
        }
        for (int v = 0; v < n_; ++v)
            if (d(v) < 0)
                throw std::invalid_argument("router: topology disconnected");
    }
}

int router::index(int from, int to) const {
    if (from < 0 || from >= n_ || to < 0 || to >= n_)
        throw std::out_of_range("router: PoP id out of range");
    return from * n_ + to;
}

int router::distance(int from, int to) const { return dist_[index(from, to)]; }

std::vector<int> router::path(int from, int to) const {
    index(from, to);  // bounds check
    std::vector<int> rev;
    int cur = to;
    while (cur != from) {
        rev.push_back(cur);
        cur = parent_[index(from, cur)];
    }
    rev.push_back(from);
    std::reverse(rev.begin(), rev.end());
    return rev;
}

int router::next_hop(int from, int to) const {
    if (from == to) return from;
    const auto p = path(from, to);
    return p[1];
}

}  // namespace tfd::net
