// tfd::net — backbone topology model.
//
// Models a PoP-level backbone: named PoPs, bidirectional links, per-PoP
// address space, and an egress-resolution table (longest-prefix match
// over per-PoP prefixes, standing in for the BGP/ISIS tables of [10]).
// Factories reproduce the two networks studied in the paper: Abilene
// (11 PoPs, 121 OD flows, 1/100 sampling, 11-bit anonymization) and
// Geant (22 PoPs, 484 OD flows, 1/1000 sampling, no anonymization).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ip.h"
#include "net/prefix_table.h"

namespace tfd::net {

/// A point of presence.
struct pop {
    int id = 0;                ///< dense index in [0, pop_count)
    std::string name;          ///< e.g. "STTL" or "DE"
    prefix address_space;      ///< aggregate prefix owned by this PoP
};

/// A bidirectional backbone link between two PoPs.
struct link {
    int a = 0;
    int b = 0;
};

/// PoP-level backbone topology with per-PoP address space and an LPM
/// egress table. Immutable after construction.
class topology {
public:
    /// Build a topology from PoP names and links; PoP i is assigned the
    /// aggregate prefix (base_octet + i).0.0.0/8 plus a handful of more
    /// specific customer prefixes (exercising real LPM behaviour).
    /// Throws std::invalid_argument on empty PoP list or out-of-range link
    /// endpoints.
    topology(std::string name, std::vector<std::string> pop_names,
             std::vector<link> links, int base_octet = 1);

    /// The Abilene Internet2 backbone, ca. 2003: 11 PoPs, 14 links.
    static topology abilene();

    /// The Geant European research backbone, ca. 2004: 22 PoPs.
    static topology geant();

    /// A parameterized synthetic backbone for scale testing — the
    /// 50–150 PoP band between Geant and a tier-1 ISP, where the
    /// unfolded OD x feature width (4 * pops^2) reaches the n >= 1024
    /// scales the blocked eigensolver targets. Structure is ISP-like:
    /// a hub-biased random spanning tree (preferential attachment, so
    /// a few PoPs grow Frankfurt/London-style degrees) plus ~pops/2
    /// shortcut links. Fully deterministic in (pops, seed): the same
    /// arguments always produce the same topology, and the graph is
    /// connected by construction. `pops` must be in [2, 180] (the
    /// band below 50 stays available so tests can pick widths like
    /// 4 * 16^2 = 1024); base_octet + pops must stay <= 255.
    static topology synthetic(int pops, std::uint64_t seed = 1,
                              int base_octet = 70);

    const std::string& name() const noexcept { return name_; }
    int pop_count() const noexcept { return static_cast<int>(pops_.size()); }
    const std::vector<pop>& pops() const noexcept { return pops_; }
    const std::vector<link>& links() const noexcept { return links_; }

    /// PoP by id; throws std::out_of_range.
    const pop& pop_at(int id) const;

    /// PoP id by name; std::nullopt if unknown.
    std::optional<int> pop_by_name(const std::string& name) const noexcept;

    /// Number of OD flows = pop_count^2 (self-pairs included, matching the
    /// paper's 121 for Abilene and 484 for Geant).
    int od_count() const noexcept { return pop_count() * pop_count(); }

    /// Dense OD index for (origin, destination). Throws std::out_of_range.
    int od_index(int origin, int destination) const;

    /// Inverse of od_index.
    std::pair<int, int> od_pair(int od) const;

    /// Egress PoP for a destination address (longest-prefix match over the
    /// per-PoP address space); std::nullopt for addresses outside the
    /// network (e.g. external peers).
    std::optional<int> egress_pop(ipv4 dst) const noexcept;

    /// An address chosen deterministically inside PoP `id`'s space;
    /// `host_bits` selects the host portion. Throws std::out_of_range.
    ipv4 address_in_pop(int id, std::uint32_t host_bits) const;

    /// The LPM egress table (read-only), for tests and tools.
    const prefix_table& egress_table() const noexcept { return egress_; }

    /// Adjacency list (PoP id -> neighbouring PoP ids).
    const std::vector<std::vector<int>>& adjacency() const noexcept {
        return adjacency_;
    }

private:
    std::string name_;
    std::vector<pop> pops_;
    std::vector<link> links_;
    std::vector<std::vector<int>> adjacency_;
    prefix_table egress_;
};

}  // namespace tfd::net
