// tfd::net — longest-prefix-match table.
//
// Stand-in for the BGP/ISIS-derived egress resolution of Feldmann et al.
// [10] used by the paper to attribute each sampled flow to an egress PoP:
// a static table mapping destination prefixes to PoP ids, queried with
// longest-prefix match.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/ip.h"

namespace tfd::net {

/// Longest-prefix-match table from IPv4 prefixes to integer route targets
/// (PoP ids here, but the value type is an opaque int).
///
/// Implementation: one hash map per prefix length, probed from /32 down to
/// /0. Insertion replaces an existing identical prefix.
class prefix_table {
public:
    /// Add (or replace) a route. Throws std::invalid_argument via prefix
    /// validation if the prefix is malformed.
    void insert(const prefix& p, int target);

    /// Longest-prefix match; std::nullopt if no prefix covers `addr`.
    std::optional<int> lookup(ipv4 addr) const noexcept;

    /// Exact-prefix lookup (no LPM semantics).
    std::optional<int> exact(const prefix& p) const noexcept;

    /// Remove an exact prefix; returns true if something was removed.
    bool erase(const prefix& p) noexcept;

    /// Number of routes installed.
    std::size_t size() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }

    /// All routes, for iteration/diagnostics (unspecified order).
    std::vector<std::pair<prefix, int>> entries() const;

private:
    // maps_[len]: network address -> target for prefixes of that length.
    std::unordered_map<std::uint32_t, int> maps_[33];
    std::size_t count_ = 0;
};

}  // namespace tfd::net
