#include "net/prefix_table.h"

namespace tfd::net {

void prefix_table::insert(const prefix& p, int target) {
    auto& m = maps_[p.length];
    auto [it, inserted] = m.insert_or_assign(p.network.value, target);
    (void)it;
    if (inserted) ++count_;
}

std::optional<int> prefix_table::lookup(ipv4 addr) const noexcept {
    for (int len = 32; len >= 0; --len) {
        const auto& m = maps_[len];
        if (m.empty()) continue;
        const std::uint32_t mask =
            len == 0 ? 0u : (~std::uint32_t{0} << (32 - len));
        const auto it = m.find(addr.value & mask);
        if (it != m.end()) return it->second;
    }
    return std::nullopt;
}

std::optional<int> prefix_table::exact(const prefix& p) const noexcept {
    const auto& m = maps_[p.length];
    const auto it = m.find(p.network.value);
    if (it == m.end()) return std::nullopt;
    return it->second;
}

bool prefix_table::erase(const prefix& p) noexcept {
    auto& m = maps_[p.length];
    if (m.erase(p.network.value) > 0) {
        --count_;
        return true;
    }
    return false;
}

std::vector<std::pair<prefix, int>> prefix_table::entries() const {
    std::vector<std::pair<prefix, int>> out;
    out.reserve(count_);
    for (int len = 0; len <= 32; ++len)
        for (const auto& [net, target] : maps_[len])
            out.emplace_back(prefix{ipv4{net}, len}, target);
    return out;
}

}  // namespace tfd::net
