// tfd::net — shortest-path routing over a topology.
//
// ISIS-like intra-domain routing with unit link weights: precomputes
// shortest paths between all PoP pairs (BFS per source, deterministic
// lowest-id tie-breaking). Used to map OD flows onto link paths and to
// model outage-induced traffic shifts.
#pragma once

#include <vector>

#include "net/topology.h"

namespace tfd::net {

/// All-pairs shortest paths for a topology.
class router {
public:
    /// Precomputes paths; throws std::invalid_argument if the topology is
    /// disconnected (every backbone studied here is connected).
    explicit router(const topology& topo);

    /// Hop distance between PoPs (0 for from == to).
    int distance(int from, int to) const;

    /// Shortest path as PoP ids, inclusive of both endpoints.
    /// path(x, x) == {x}.
    std::vector<int> path(int from, int to) const;

    /// First hop on the path from `from` to `to` (== to if adjacent,
    /// == from if from == to).
    int next_hop(int from, int to) const;

    int pop_count() const noexcept { return n_; }

private:
    int index(int from, int to) const;

    int n_ = 0;
    std::vector<int> dist_;      // n*n hop counts
    std::vector<int> parent_;    // parent[to] on BFS tree rooted at from
};

}  // namespace tfd::net
