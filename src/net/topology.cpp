#include "net/topology.h"

#include <cstdio>
#include <stdexcept>

namespace tfd::net {

topology::topology(std::string name, std::vector<std::string> pop_names,
                   std::vector<link> links, int base_octet)
    : name_(std::move(name)), links_(std::move(links)) {
    if (pop_names.empty())
        throw std::invalid_argument("topology: need at least one PoP");
    if (base_octet < 1 || base_octet + static_cast<int>(pop_names.size()) > 255)
        throw std::invalid_argument("topology: base_octet out of range");

    pops_.reserve(pop_names.size());
    for (std::size_t i = 0; i < pop_names.size(); ++i) {
        pop p;
        p.id = static_cast<int>(i);
        p.name = std::move(pop_names[i]);
        const auto octet = static_cast<std::uint8_t>(base_octet + i);
        p.address_space = prefix{ipv4::from_octets(octet, 0, 0, 0), 8};
        pops_.push_back(std::move(p));
    }

    adjacency_.resize(pops_.size());
    for (const link& l : links_) {
        if (l.a < 0 || l.b < 0 || l.a >= pop_count() || l.b >= pop_count())
            throw std::invalid_argument("topology: link endpoint out of range");
        adjacency_[l.a].push_back(l.b);
        adjacency_[l.b].push_back(l.a);
    }

    // Egress table: the aggregate /8 per PoP plus a few more-specific /16
    // "customer" prefixes pointing at the same PoP, so lookups exercise
    // genuine longest-prefix-match behaviour.
    for (const pop& p : pops_) {
        egress_.insert(p.address_space, p.id);
        for (std::uint8_t sub : {1, 7, 42}) {
            const prefix customer{
                ipv4{p.address_space.network.value |
                     (std::uint32_t(sub) << 16)},
                16};
            egress_.insert(customer, p.id);
        }
    }
}

const pop& topology::pop_at(int id) const {
    if (id < 0 || id >= pop_count())
        throw std::out_of_range("topology: PoP id out of range");
    return pops_[id];
}

std::optional<int> topology::pop_by_name(const std::string& name) const noexcept {
    for (const pop& p : pops_)
        if (p.name == name) return p.id;
    return std::nullopt;
}

int topology::od_index(int origin, int destination) const {
    if (origin < 0 || origin >= pop_count() || destination < 0 ||
        destination >= pop_count())
        throw std::out_of_range("topology: OD endpoint out of range");
    return origin * pop_count() + destination;
}

std::pair<int, int> topology::od_pair(int od) const {
    if (od < 0 || od >= od_count())
        throw std::out_of_range("topology: OD index out of range");
    return {od / pop_count(), od % pop_count()};
}

std::optional<int> topology::egress_pop(ipv4 dst) const noexcept {
    return egress_.lookup(dst);
}

ipv4 topology::address_in_pop(int id, std::uint32_t host_bits) const {
    const pop& p = pop_at(id);
    const std::uint32_t host_mask = ~p.address_space.mask();
    return ipv4{p.address_space.network.value | (host_bits & host_mask)};
}

topology topology::abilene() {
    // Abilene (Internet2), circa 2003: 11 PoPs, 14 OC-192 links.
    std::vector<std::string> names{"STTL", "SNVA", "LOSA", "DNVR",
                                   "KSCY", "HSTN", "IPLS", "ATLA",
                                   "CHIN", "NYCM", "WASH"};
    auto id = [&](const char* n) {
        for (std::size_t i = 0; i < names.size(); ++i)
            if (names[i] == n) return static_cast<int>(i);
        throw std::logic_error("abilene: unknown PoP");
    };
    std::vector<link> links{
        {id("STTL"), id("SNVA")}, {id("STTL"), id("DNVR")},
        {id("SNVA"), id("LOSA")}, {id("SNVA"), id("DNVR")},
        {id("LOSA"), id("HSTN")}, {id("DNVR"), id("KSCY")},
        {id("KSCY"), id("HSTN")}, {id("KSCY"), id("IPLS")},
        {id("HSTN"), id("ATLA")}, {id("IPLS"), id("CHIN")},
        {id("IPLS"), id("ATLA")}, {id("CHIN"), id("NYCM")},
        {id("ATLA"), id("WASH")}, {id("NYCM"), id("WASH")},
    };
    return topology("Abilene", std::move(names), std::move(links),
                    /*base_octet=*/10);
}

topology topology::geant() {
    // Geant, circa 2004: 22 PoPs in European capitals. Link set is a
    // representative reconstruction (hubs in DE/UK/FR/NL/IT) — the
    // diagnosis methods depend only on PoP count and OD structure.
    std::vector<std::string> names{"AT", "BE", "CH", "CZ", "DE", "DK",
                                   "ES", "FR", "GR", "HR", "HU", "IE",
                                   "IT", "LU", "NL", "PL", "PT", "SE",
                                   "SI", "SK", "UK", "NO"};
    auto id = [&](const char* n) {
        for (std::size_t i = 0; i < names.size(); ++i)
            if (names[i] == n) return static_cast<int>(i);
        throw std::logic_error("geant: unknown PoP");
    };
    std::vector<link> links{
        {id("UK"), id("FR")}, {id("UK"), id("NL")}, {id("UK"), id("IE")},
        {id("FR"), id("ES")}, {id("FR"), id("CH")}, {id("FR"), id("BE")},
        {id("FR"), id("LU")}, {id("ES"), id("PT")}, {id("CH"), id("IT")},
        {id("CH"), id("AT")}, {id("IT"), id("GR")}, {id("IT"), id("SI")},
        {id("SI"), id("HR")}, {id("AT"), id("HU")}, {id("AT"), id("CZ")},
        {id("AT"), id("SK")}, {id("HU"), id("HR")}, {id("CZ"), id("PL")},
        {id("CZ"), id("DE")}, {id("DE"), id("NL")}, {id("DE"), id("DK")},
        {id("DE"), id("PL")}, {id("DE"), id("AT")}, {id("DE"), id("FR")},
        {id("NL"), id("BE")}, {id("DK"), id("SE")}, {id("SE"), id("NO")},
        {id("DE"), id("SE")}, {id("UK"), id("NO")},
    };
    return topology("Geant", std::move(names), std::move(links),
                    /*base_octet=*/60);
}

topology topology::synthetic(int pops, std::uint64_t seed, int base_octet) {
    if (pops < 2 || pops > 180)
        throw std::invalid_argument("synthetic: pops must be in [2, 180]");

    // splitmix64 — small, deterministic, and keeps net free of a
    // dependency on the traffic-layer rng (traffic already depends on
    // net for the topology type).
    std::uint64_t state = seed ^ 0x9e3779b97f4a7c15ULL;
    auto next = [&state]() {
        state += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = state;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    };
    auto uniform = [&next](std::uint64_t bound) {
        return static_cast<int>(next() % bound);
    };

    std::vector<std::string> names(static_cast<std::size_t>(pops));
    for (int i = 0; i < pops; ++i) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "P%03d", i);
        names[static_cast<std::size_t>(i)] = buf;
    }

    // Spanning tree with preferential attachment: each new PoP homes to
    // an endpoint drawn from all existing link endpoints (so high-degree
    // PoPs attract more links — the hub structure real backbones show),
    // guaranteeing connectivity. Then ~pops/2 shortcut links bring the
    // mean degree to ~3, Abilene/Geant territory.
    std::vector<link> links;
    std::vector<int> endpoints{0};
    for (int i = 1; i < pops; ++i) {
        const int parent = endpoints[static_cast<std::size_t>(
            uniform(endpoints.size()))];
        links.push_back({parent, i});
        endpoints.push_back(parent);
        endpoints.push_back(i);
    }
    auto linked = [&links](int a, int b) {
        for (const link& l : links)
            if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) return true;
        return false;
    };
    for (int extra = pops / 2; extra > 0;) {
        const int a = uniform(static_cast<std::uint64_t>(pops));
        const int b = uniform(static_cast<std::uint64_t>(pops));
        if (a == b || linked(a, b)) {
            --extra;  // bounded walk: skip without retrying forever
            continue;
        }
        links.push_back({a, b});
        endpoints.push_back(a);
        endpoints.push_back(b);
        --extra;
    }

    return topology("Synthetic-" + std::to_string(pops), std::move(names),
                    std::move(links), base_octet);
}

}  // namespace tfd::net
