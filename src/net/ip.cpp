#include "net/ip.h"

#include <charconv>
#include <stdexcept>

namespace tfd::net {

namespace {

// Parse an integer in [lo, hi] from [first, last), advancing first.
int parse_bounded_int(const char*& first, const char* last, int lo, int hi,
                      const char* what) {
    int out = 0;
    auto [ptr, ec] = std::from_chars(first, last, out);
    if (ec != std::errc{} || out < lo || out > hi)
        throw std::invalid_argument(std::string("parse: bad ") + what);
    first = ptr;
    return out;
}

}  // namespace

ipv4 parse_ipv4(const std::string& text) {
    const char* p = text.data();
    const char* end = p + text.size();
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
        const int octet = parse_bounded_int(p, end, 0, 255, "octet");
        value = (value << 8) | static_cast<std::uint32_t>(octet);
        if (i < 3) {
            if (p == end || *p != '.')
                throw std::invalid_argument("parse_ipv4: expected '.'");
            ++p;
        }
    }
    if (p != end) throw std::invalid_argument("parse_ipv4: trailing characters");
    return ipv4{value};
}

std::string to_string(ipv4 addr) {
    return std::to_string((addr.value >> 24) & 0xff) + '.' +
           std::to_string((addr.value >> 16) & 0xff) + '.' +
           std::to_string((addr.value >> 8) & 0xff) + '.' +
           std::to_string(addr.value & 0xff);
}

prefix::prefix(ipv4 addr, int len) : length(len) {
    if (len < 0 || len > 32)
        throw std::invalid_argument("prefix: length must be in [0,32]");
    network = ipv4{addr.value & mask()};
}

std::uint32_t prefix::mask() const noexcept {
    if (length <= 0) return 0;
    return ~std::uint32_t{0} << (32 - length);
}

bool prefix::contains(ipv4 addr) const noexcept {
    return (addr.value & mask()) == network.value;
}

std::uint64_t prefix::size() const noexcept {
    return std::uint64_t{1} << (32 - length);
}

prefix parse_prefix(const std::string& text) {
    const auto slash = text.find('/');
    if (slash == std::string::npos)
        throw std::invalid_argument("parse_prefix: missing '/'");
    const ipv4 addr = parse_ipv4(text.substr(0, slash));
    const char* p = text.data() + slash + 1;
    const char* end = text.data() + text.size();
    const int len = parse_bounded_int(p, end, 0, 32, "prefix length");
    if (p != end)
        throw std::invalid_argument("parse_prefix: trailing characters");
    return prefix{addr, len};
}

std::string to_string(const prefix& p) {
    return to_string(p.network) + '/' + std::to_string(p.length);
}

}  // namespace tfd::net
