// tfd::net — IPv4 addresses and prefixes.
//
// Addresses are plain 32-bit values (host byte order) wrapped in a strong
// type; prefixes carry an address plus length and support containment
// tests. Parsing/formatting of dotted-quad strings is provided for
// examples and diagnostics.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace tfd::net {

/// IPv4 address (host byte order).
struct ipv4 {
    std::uint32_t value = 0;

    constexpr ipv4() = default;
    constexpr explicit ipv4(std::uint32_t v) : value(v) {}

    /// Build from dotted-quad octets.
    static constexpr ipv4 from_octets(std::uint8_t a, std::uint8_t b,
                                      std::uint8_t c, std::uint8_t d) {
        return ipv4{(std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
                    (std::uint32_t(c) << 8) | std::uint32_t(d)};
    }

    auto operator<=>(const ipv4&) const = default;
};

/// Parse "a.b.c.d". Throws std::invalid_argument on malformed input.
ipv4 parse_ipv4(const std::string& text);

/// Render as dotted quad.
std::string to_string(ipv4 addr);

/// IPv4 prefix (CIDR block).
struct prefix {
    ipv4 network;      ///< network address (low bits zero)
    int length = 0;    ///< prefix length in [0, 32]

    constexpr prefix() = default;

    /// Construct, canonicalizing the network address (masks host bits).
    /// Throws std::invalid_argument if length outside [0, 32].
    prefix(ipv4 addr, int len);

    /// Netmask as a 32-bit value.
    std::uint32_t mask() const noexcept;

    /// True if `addr` falls inside this prefix.
    bool contains(ipv4 addr) const noexcept;

    /// Number of addresses covered (2^(32-length), saturates at 2^32-1 for
    /// display purposes when length == 0).
    std::uint64_t size() const noexcept;

    auto operator<=>(const prefix&) const = default;
};

/// Parse "a.b.c.d/len". Throws std::invalid_argument on malformed input.
prefix parse_prefix(const std::string& text);

/// Render as "a.b.c.d/len".
std::string to_string(const prefix& p);

/// Mask out the low `bits` bits of an address (used to model the Abilene
/// anonymization, which zeroes the last 11 bits).
constexpr ipv4 mask_low_bits(ipv4 addr, int bits) {
    if (bits <= 0) return addr;
    if (bits >= 32) return ipv4{0};
    return ipv4{addr.value & ~((std::uint32_t{1} << bits) - 1)};
}

}  // namespace tfd::net
