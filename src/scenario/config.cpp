#include "scenario/config.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace tfd::scenario {

namespace {

std::string trim(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
}

}  // namespace

const config_entry* config_section::find(const std::string& key) const {
    const config_entry* found = nullptr;
    for (const config_entry& e : entries)
        if (e.key == key) found = &e;
    return found;
}

std::string config_section::get_string(const std::string& key,
                                       const std::string& fallback) const {
    const config_entry* e = find(key);
    return e ? e->value : fallback;
}

double config_section::get_number(const std::string& key,
                                  double fallback) const {
    const config_entry* e = find(key);
    if (!e) return fallback;
    char* end = nullptr;
    const double v = std::strtod(e->value.c_str(), &end);
    if (end == e->value.c_str() || *end != '\0')
        throw config_error(e->line, "'" + key + "' expects a number, got '" +
                                        e->value + "'");
    return v;
}

std::uint64_t config_section::get_count(const std::string& key,
                                        std::uint64_t fallback) const {
    const config_entry* e = find(key);
    if (!e) return fallback;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(e->value.c_str(), &end, 10);
    if (end == e->value.c_str() || *end != '\0' || e->value[0] == '-')
        throw config_error(e->line, "'" + key + "' expects a non-negative "
                                        "integer, got '" + e->value + "'");
    return v;
}

std::int64_t config_section::get_int(const std::string& key,
                                     std::int64_t fallback) const {
    const config_entry* e = find(key);
    if (!e) return fallback;
    char* end = nullptr;
    const long long v = std::strtoll(e->value.c_str(), &end, 10);
    if (end == e->value.c_str() || *end != '\0')
        throw config_error(e->line, "'" + key + "' expects an integer, got '" +
                                        e->value + "'");
    return v;
}

bool config_section::get_bool(const std::string& key, bool fallback) const {
    const config_entry* e = find(key);
    if (!e) return fallback;
    const std::string& v = e->value;
    if (v == "on" || v == "true" || v == "yes" || v == "1") return true;
    if (v == "off" || v == "false" || v == "no" || v == "0") return false;
    throw config_error(e->line, "'" + key + "' expects on/off, got '" + v +
                                    "'");
}

void config_section::require_keys(const char* const* allowed) const {
    for (const config_entry& e : entries) {
        bool ok = false;
        for (const char* const* k = allowed; *k != nullptr; ++k)
            if (e.key == *k) {
                ok = true;
                break;
            }
        if (!ok)
            throw config_error(e.line, "unknown key '" + e.key +
                                           "' in section [" + name + "]");
    }
}

const config_section* config_file::first(const std::string& name) const {
    for (const config_section& s : sections)
        if (s.name == name) return &s;
    return nullptr;
}

std::vector<const config_section*> config_file::all(
    const std::string& name) const {
    std::vector<const config_section*> out;
    for (const config_section& s : sections)
        if (s.name == name) out.push_back(&s);
    return out;
}

config_file parse_config(std::istream& in) {
    config_file file;
    std::string raw;
    std::size_t lineno = 0;
    while (std::getline(in, raw)) {
        ++lineno;
        const std::string line = trim(raw);
        if (line.empty() || line[0] == '#' || line[0] == ';') continue;
        if (line[0] == '[') {
            if (line.back() != ']')
                throw config_error(lineno, "unterminated section header");
            const std::string name = trim(line.substr(1, line.size() - 2));
            if (name.empty())
                throw config_error(lineno, "empty section name");
            config_section s;
            s.name = name;
            s.line = lineno;
            file.sections.push_back(std::move(s));
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos)
            throw config_error(lineno, "expected 'key = value' or [section]");
        config_entry e;
        e.key = trim(line.substr(0, eq));
        e.value = trim(line.substr(eq + 1));
        e.line = lineno;
        if (e.key.empty()) throw config_error(lineno, "empty key");
        if (file.sections.empty())
            throw config_error(lineno, "entry before any [section]");
        file.sections.back().entries.push_back(std::move(e));
    }
    return file;
}

config_file parse_config_string(const std::string& text) {
    std::istringstream in(text);
    return parse_config(in);
}

config_file load_config(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw config_error(0, "cannot open " + path);
    return parse_config(in);
}

}  // namespace tfd::scenario
