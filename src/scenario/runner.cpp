#include "scenario/runner.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "io/fault.h"
#include "net/topology.h"
#include "obs/json.h"
#include "stream/flow_codec.h"
#include "stream/pipeline.h"
#include "traffic/background.h"
#include "traffic/rng.h"

namespace tfd::scenario {

namespace {

constexpr double kPi = 3.14159265358979323846;
/// Residual background on an OD carrying a planted `outage` anomaly
/// (the generator emits no records for outage — the dip IS the signal).
constexpr double kOutageResidual = 0.05;

/// Composed per-(bin, od) generation adjustments.
struct bin_tweaks {
    double volume_scale = 1.0;
    std::size_t host_rank_offset = 0;
};

double regime_volume(const regime_spec& r, std::size_t bin) {
    switch (r.kind) {
        case regime_kind::baseline: return 1.0;
        case regime_kind::diurnal:
            return 1.0 + r.amplitude *
                             std::sin(2.0 * kPi *
                                      static_cast<double>(bin - r.start_bin) /
                                      static_cast<double>(r.period_bins));
        case regime_kind::flash_crowd: return 1.0 + r.amplitude;
        case regime_kind::step_drift: return r.volume_scale;
        case regime_kind::gradual_drift: {
            const double p =
                static_cast<double>(bin - r.start_bin + 1) /
                static_cast<double>(r.duration_bins);
            return 1.0 + (r.volume_scale - 1.0) * std::min(1.0, p);
        }
    }
    return 1.0;
}

std::size_t regime_rank_offset(const regime_spec& r, std::size_t bin) {
    switch (r.kind) {
        case regime_kind::step_drift: return r.host_rank_offset;
        case regime_kind::gradual_drift: {
            const double p =
                static_cast<double>(bin - r.start_bin + 1) /
                static_cast<double>(r.duration_bins);
            return static_cast<std::size_t>(
                std::llround(static_cast<double>(r.host_rank_offset) *
                             std::min(1.0, p)));
        }
        default: return 0;
    }
}

/// Distinct deterministic sub-streams of the variant seed.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt,
                       std::uint64_t n) {
    std::uint64_t x = seed ^ (salt * 0x9E3779B97F4A7C15ull + n);
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDull;
    x ^= x >> 33;
    return x;
}

}  // namespace

experiment_runner::experiment_runner(scenario_model model)
    : model_(std::move(model)) {
    if (model_.variants.empty())
        throw config_error(0, "scenario has no variants");
}

campaign_result experiment_runner::run() {
    campaign_result out;
    out.scenario = model_.name;
    out.topology = model_.topology;
    out.bins = model_.bins;
    out.seed = model_.seed;
    out.drift_phase_start = model_.drift_phase_start();
    for (const variant_spec& v : model_.variants)
        out.variants.push_back(run_one(v));
    return out;
}

variant_score experiment_runner::run_variant(const std::string& name) {
    for (const variant_spec& v : model_.variants)
        if (v.name == name) return run_one(v);
    throw std::invalid_argument("unknown variant '" + name + "'");
}

variant_score experiment_runner::run_one(const variant_spec& variant) {
    const std::uint64_t seed = variant.seed != 0 ? variant.seed : model_.seed;
    const net::topology topo = model_.topology == "geant"
                                   ? net::topology::geant()
                                   : net::topology::abilene();

    traffic::background_options bopts;
    bopts.seed = seed;
    bopts.mean_records_per_bin = model_.mean_records_per_bin;
    const traffic::background_model bg(topo, bopts);
    const std::uint64_t bin_us = bg.options().bin_us;
    const double bin_seconds = static_cast<double>(bin_us) / 1e6;

    stream::pipeline_options popts;
    popts.online.window = model_.detector.window;
    popts.online.warmup = model_.detector.warmup;
    popts.online.refit_interval = model_.detector.refit_interval;
    popts.online.subspace.normal_dims =
        static_cast<std::size_t>(model_.detector.normal_dims);
    popts.online.alpha = model_.detector.alpha;
    if (variant.drift_enabled) {
        popts.online.recalibration.enabled = true;
        popts.online.recalibration.relearn_bins = model_.drift.relearn_bins;
        popts.online.recalibration.degraded_confidence =
            model_.drift.degraded_confidence;
        popts.online.recalibration.monitor = model_.drift.monitor;
    }
    stream::stream_pipeline pipeline(topo, popts);

    variant_score score;
    score.variant = variant.name;
    score.drift_enabled = variant.drift_enabled;
    const std::size_t drift_start = model_.drift_phase_start();

    pipeline.on_bin([&](const stream::bin_result& r) {
        ++score.bins_emitted;
        if (!r.verdict.scored) return;
        ++score.bins_scored;
        bool truth = false;
        for (const anomaly_spec& a : model_.anomalies)
            if (a.active_in(r.stats.bin)) truth = true;
        // Scoring counts operator-visible alarms only: a degraded
        // (re-learning) verdict is delivered low-confidence and
        // alert-suppressed, so it pages nobody — it lands in
        // low_confidence_alarms instead of either rate.
        const bool alarmed = r.verdict.anomalous && !r.verdict.degraded;
        if (r.verdict.anomalous && r.verdict.degraded)
            ++score.low_confidence_alarms;
        if (truth) {
            ++score.anomaly_bins;
            if (alarmed) ++score.true_detections;
        } else {
            ++score.clean_bins;
            if (alarmed) ++score.false_alarms;
            if (r.stats.bin >= drift_start) {
                ++score.drift_clean_bins;
                if (alarmed) ++score.drift_false_alarms;
            }
        }
        if (r.verdict.degraded) ++score.degraded_bins;
        if (r.verdict.drift_detected) ++score.drift_events;
        if (r.verdict.recalibrated) {
            ++score.recalibrations;
            if (score.time_to_recalibrate_bins == 0 &&
                drift_start < model_.bins && r.stats.bin >= drift_start)
                score.time_to_recalibrate_bins =
                    r.stats.bin - drift_start + 1;
        }
    });

    // Deterministic OD assignment for anomalies declared with od = -1.
    std::vector<int> anomaly_od(model_.anomalies.size());
    for (std::size_t i = 0; i < model_.anomalies.size(); ++i) {
        if (model_.anomalies[i].od >= 0) {
            anomaly_od[i] = model_.anomalies[i].od;
        } else {
            traffic::rng pick(mix_seed(seed, 0xA11, i));
            anomaly_od[i] = static_cast<int>(
                pick.uniform_int(static_cast<std::uint64_t>(topo.od_count())));
        }
    }

    std::vector<flow::flow_record> carried;  // reorder spillover
    for (std::size_t bin = 0; bin < model_.bins; ++bin) {
        // Active degradations for this bin.
        bool gap = false;
        double thin_keep = 1.0, reorder_rate = 0.0, corrupt_rate = 0.0;
        for (const degradation_spec& d : model_.degradations) {
            if (!d.active_in(bin, model_.bins)) continue;
            switch (d.kind) {
                case degradation_kind::feed_gap: gap = true; break;
                case degradation_kind::thinning:
                    thin_keep = std::min(thin_keep, d.rate);
                    break;
                case degradation_kind::reorder:
                    reorder_rate = std::max(reorder_rate, d.rate);
                    break;
                case degradation_kind::corrupt_frames:
                    corrupt_rate = std::max(corrupt_rate, d.rate);
                    break;
            }
        }
        if (gap) {
            carried.clear();  // records delayed into a dark bin are lost
            continue;
        }

        std::vector<flow::flow_record> records = std::move(carried);
        carried.clear();

        for (int od = 0; od < topo.od_count(); ++od) {
            bin_tweaks t;
            for (const regime_spec& r : model_.regimes) {
                if (!r.active_in(bin, model_.bins)) continue;
                t.volume_scale *= regime_volume(r, bin);
                t.host_rank_offset += regime_rank_offset(r, bin);
            }
            const auto [o, d] = topo.od_pair(od);
            for (const topology_event_spec& te : model_.topology_events)
                if (te.active_in(bin) && (o == te.pop || d == te.pop))
                    t.volume_scale *= te.residual_scale;
            for (std::size_t i = 0; i < model_.anomalies.size(); ++i)
                if (model_.anomalies[i].type ==
                        traffic::anomaly_type::outage &&
                    model_.anomalies[i].active_in(bin) &&
                    anomaly_od[i] == od)
                    t.volume_scale *= kOutageResidual;

            traffic::generation_tweaks gt;
            gt.volume_scale = t.volume_scale;
            gt.host_rank_offset = t.host_rank_offset;
            const auto cell = bg.generate(bin, od, gt);
            records.insert(records.end(), cell.begin(), cell.end());

            for (std::size_t i = 0; i < model_.anomalies.size(); ++i) {
                const anomaly_spec& a = model_.anomalies[i];
                if (!a.active_in(bin) || anomaly_od[i] != od) continue;
                if (a.type == traffic::anomaly_type::outage) continue;
                double pps = a.packets_per_second;
                if (pps <= 0.0) {
                    const auto [lo, hi] =
                        traffic::default_intensity_range(a.type);
                    pps = 0.5 * (lo + hi);
                }
                traffic::anomaly_cell cell_spec;
                cell_spec.type = a.type;
                cell_spec.od = od;
                cell_spec.bin = bin;
                cell_spec.packets = pps * bin_seconds;
                cell_spec.bin_us = bin_us;
                const auto an = traffic::generate_anomaly_records(
                    topo, cell_spec,
                    traffic::rng(mix_seed(seed, 0xA2, i * 131071 + bin)));
                records.insert(records.end(), an.begin(), an.end());
            }
        }

        if (thin_keep < 1.0) {
            traffic::rng thin(mix_seed(seed, 0x7417, bin));
            std::vector<flow::flow_record> kept;
            kept.reserve(records.size());
            for (const auto& r : records)
                if (thin.chance(thin_keep)) kept.push_back(r);
            records = std::move(kept);
        }

        if (reorder_rate > 0.0) {
            // Delay a deterministic fraction into the next bin's push;
            // by then their bin is closed, so the pipeline late-drops
            // them — reordering beyond the bin boundary IS data loss
            // for a bin-synchronous consumer (unless reorder_window
            // holds bins open, which the scenario detector does not).
            traffic::rng pick(mix_seed(seed, 0x2E02, bin));
            std::vector<flow::flow_record> now;
            now.reserve(records.size());
            for (const auto& r : records)
                if (pick.chance(reorder_rate))
                    carried.push_back(r);
                else
                    now.push_back(r);
            records = std::move(now);
        }

        if (corrupt_rate > 0.0) {
            // Round-trip this bin's records through the wire codec with
            // deterministic bit flips; frame checksums turn corruption
            // into whole-frame quarantine, so surviving records are
            // intact (no garbage timestamps reach the pipeline).
            std::ostringstream spool;
            stream::flow_codec_writer writer(spool,
                                             {.records_per_frame = 512});
            writer.add(records);
            writer.finish();
            const std::string bytes = spool.str();
            std::istringstream clean(bytes);
            io::fault_injector faults({.seed = mix_seed(seed, 0xC0, bin),
                                       .bit_flip_per_byte = corrupt_rate});
            io::fault_streambuf corrupted(*clean.rdbuf(), faults);
            std::istream in(&corrupted);
            records.clear();
            try {
                stream::codec_read_options ropts;
                ropts.on_corrupt = stream::corrupt_policy::quarantine;
                stream::flow_codec_reader reader(in, ropts);
                std::vector<flow::flow_record> frame;
                while (reader.next_frame(frame))
                    records.insert(records.end(), frame.begin(), frame.end());
            } catch (const stream::codec_error&) {
                // Header/terminal corruption: the whole bin is lost —
                // for the scenario that is just a harsher degradation.
                records.clear();
            }
        }

        if (!records.empty()) pipeline.push(records);
    }
    pipeline.finish();
    return score;
}

std::string experiment_runner::to_json(const campaign_result& result) {
    obs::json_writer w;
    w.begin_object();
    w.key("packet");
    w.value("campaign_result");
    w.key("v");
    w.value(std::uint64_t{1});
    w.key("scenario");
    w.value(result.scenario);
    w.key("topology");
    w.value(result.topology);
    w.key("bins");
    w.value(result.bins);
    w.key("seed");
    w.value(result.seed);
    w.key("drift_phase_start");
    w.value(result.drift_phase_start);
    w.key("variants");
    w.begin_array();
    for (const variant_score& v : result.variants) {
        w.begin_object();
        w.key("name");
        w.value(v.variant);
        w.key("drift");
        w.value(v.drift_enabled);
        w.key("bins_emitted");
        w.value(v.bins_emitted);
        w.key("bins_scored");
        w.value(v.bins_scored);
        w.key("anomaly_bins");
        w.value(v.anomaly_bins);
        w.key("true_detections");
        w.value(v.true_detections);
        w.key("clean_bins");
        w.value(v.clean_bins);
        w.key("false_alarms");
        w.value(v.false_alarms);
        w.key("low_confidence_alarms");
        w.value(v.low_confidence_alarms);
        w.key("detection_rate");
        w.value(v.detection_rate());
        w.key("false_alarm_rate");
        w.value(v.false_alarm_rate());
        w.key("drift_clean_bins");
        w.value(v.drift_clean_bins);
        w.key("drift_false_alarms");
        w.value(v.drift_false_alarms);
        w.key("drift_false_alarm_rate");
        w.value(v.drift_false_alarm_rate());
        w.key("drift_events");
        w.value(v.drift_events);
        w.key("recalibrations");
        w.value(v.recalibrations);
        w.key("degraded_bins");
        w.value(v.degraded_bins);
        w.key("time_to_recalibrate_bins");
        w.value(v.time_to_recalibrate_bins);
        w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.take();
}

}  // namespace tfd::scenario
