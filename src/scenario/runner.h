// tfd::scenario — the experiment runner for long-horizon robustness
// campaigns.
//
// For each variant of a scenario_model, the runner materializes the
// scenario's world bin by bin — background under the composed regimes
// and topology events, planted anomalies from the Table-1 generators,
// then the degradations the measurement substrate inflicts — streams
// it through the real bin-synchronous pipeline (stream/pipeline.h)
// with the variant's detector policy, and scores the run against the
// scenario's ground truth:
//
//   * detection_rate       — scored planted-anomaly bins flagged;
//   * false_alarm_rate     — scored clean bins flagged, overall and
//                            inside the drift phase (the stock
//                            detector's failure mode the tentpole
//                            fixes);
//   * time_to_recalibrate  — bins from drift-phase start to the
//                            detector's recalibrated verdict.
//
// Everything is deterministic in (scenario, variant): the same file
// yields byte-identical results packets (timestamps excepted), which
// is what lets CI pin campaign outcomes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/model.h"

namespace tfd::scenario {

/// Scores for one variant run.
struct variant_score {
    std::string variant;
    bool drift_enabled = false;

    std::uint64_t bins_emitted = 0;
    std::uint64_t bins_scored = 0;     ///< post-warmup bins
    std::uint64_t anomaly_bins = 0;    ///< scored bins with planted truth
    std::uint64_t true_detections = 0; ///< of those, flagged at full confidence
    std::uint64_t clean_bins = 0;      ///< scored bins without truth
    std::uint64_t false_alarms = 0;    ///< of those, flagged at full confidence
    /// Anomalous verdicts inside a degraded re-learn window. These are
    /// delivered as low-confidence, alert-suppressed events — they do
    /// not page an operator, so they count in neither detections nor
    /// false alarms; they are reported separately instead.
    std::uint64_t low_confidence_alarms = 0;

    /// The same split restricted to the drift phase (bins at or after
    /// scenario.drift_phase_start()).
    std::uint64_t drift_clean_bins = 0;
    std::uint64_t drift_false_alarms = 0;

    std::uint64_t drift_events = 0;     ///< shifts the detector confirmed
    std::uint64_t recalibrations = 0;   ///< completed re-learns
    std::uint64_t degraded_bins = 0;    ///< bins spent re-learning
    /// Bins from drift-phase start to the first recalibrated verdict;
    /// 0 when no recalibration happened (or no drift phase exists).
    std::uint64_t time_to_recalibrate_bins = 0;

    double detection_rate() const noexcept {
        return anomaly_bins ? static_cast<double>(true_detections) /
                                  static_cast<double>(anomaly_bins)
                            : 0.0;
    }
    double false_alarm_rate() const noexcept {
        return clean_bins ? static_cast<double>(false_alarms) /
                                static_cast<double>(clean_bins)
                          : 0.0;
    }
    double drift_false_alarm_rate() const noexcept {
        return drift_clean_bins ? static_cast<double>(drift_false_alarms) /
                                      static_cast<double>(drift_clean_bins)
                                : 0.0;
    }
};

struct campaign_result {
    std::string scenario;
    std::string topology;
    std::uint64_t bins = 0;
    std::uint64_t seed = 0;
    std::uint64_t drift_phase_start = 0;  ///< == bins when no drift phase
    std::vector<variant_score> variants;
};

class experiment_runner {
public:
    /// Throws config_error when the model is internally inconsistent
    /// (parse_scenario already enforces this for file-loaded models).
    explicit experiment_runner(scenario_model model);

    /// Run every variant; deterministic in the model.
    campaign_result run();

    /// Run one variant by name; throws std::invalid_argument on an
    /// unknown name.
    variant_score run_variant(const std::string& name);

    const scenario_model& model() const noexcept { return model_; }

    /// Machine-readable results packet (obs::json, one line).
    static std::string to_json(const campaign_result& result);

private:
    variant_score run_one(const variant_spec& variant);

    scenario_model model_;
};

}  // namespace tfd::scenario
