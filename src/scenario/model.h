// tfd::scenario — the declarative, validated scenario model.
//
// A scenario composes, over a shared bin timeline:
//
//   * background REGIMES — what "normal" looks like and how it moves:
//     diurnal modulation, flash-crowd plateaus, and the step/gradual
//     drifts that stress the detector's calibration;
//   * ANOMALIES — planted events from the Table-1 taxonomy
//     (traffic/anomaly.h), the ground truth the scorer checks against;
//   * DEGRADATIONS — what the measurement substrate does to the data:
//     thinning (extra sampling loss), feed gaps, reordered delivery,
//     corrupt codec frames (via the PR-5 fault injector);
//   * TOPOLOGY EVENTS — PoP-level outages that reshape many OD flows
//     at once;
//   * VARIANTS — the sweep axis: the same world run with different
//     detector policies (drift recalibration on/off, seed overrides).
//
// Everything is validated at load time against the named topology:
// unknown sections, unknown keys, out-of-range bins/ODs/PoPs, or
// nonsensical parameters fail with a config_error carrying the source
// line — a campaign file either loads whole or not at all. See
// src/scenario/README.md for the full schema.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/drift.h"
#include "scenario/config.h"
#include "traffic/anomaly.h"

namespace tfd::scenario {

/// How the background's "normal" behaves over a window of bins.
enum class regime_kind : int {
    baseline,       ///< no modulation (the implicit default everywhere)
    diurnal,        ///< sinusoidal volume swing, period_bins long
    flash_crowd,    ///< plateau: volume * (1 + amplitude) while active
    step_drift,     ///< abrupt, persistent change in volume + host mix
    gradual_drift,  ///< the same change, ramped linearly over the window
};

regime_kind parse_regime_kind(const std::string& name, std::size_t line);
const char* regime_kind_name(regime_kind k) noexcept;

struct regime_spec {
    regime_kind kind = regime_kind::baseline;
    std::size_t start_bin = 0;
    std::size_t duration_bins = 0;  ///< 0 = to the end of the scenario
    double volume_scale = 1.0;      ///< step/gradual target multiplier
    std::size_t host_rank_offset = 0;  ///< step/gradual host-mix shift
    double amplitude = 0.0;         ///< diurnal swing / flash-crowd boost
    std::size_t period_bins = 24;   ///< diurnal period

    bool active_in(std::size_t bin, std::size_t total_bins) const noexcept {
        const std::size_t end =
            duration_bins == 0 ? total_bins : start_bin + duration_bins;
        return bin >= start_bin && bin < end;
    }
};

struct anomaly_spec {
    traffic::anomaly_type type = traffic::anomaly_type::none;
    std::size_t start_bin = 0;
    std::size_t duration_bins = 1;
    int od = -1;  ///< -1 = drawn deterministically from the scenario seed
    double packets_per_second = 0.0;  ///< 0 = type's default intensity

    bool active_in(std::size_t bin) const noexcept {
        return bin >= start_bin && bin < start_bin + duration_bins;
    }
};

enum class degradation_kind : int {
    thinning,        ///< keep each record with probability `rate`
    feed_gap,        ///< drop whole bins (the feed goes dark)
    reorder,         ///< delay `rate` of each bin's records into the next
    corrupt_frames,  ///< bit-flip spooled codec bytes at `rate` per byte
};

degradation_kind parse_degradation_kind(const std::string& name,
                                        std::size_t line);
const char* degradation_kind_name(degradation_kind k) noexcept;

struct degradation_spec {
    degradation_kind kind = degradation_kind::thinning;
    std::size_t start_bin = 0;
    std::size_t duration_bins = 0;  ///< 0 = to the end
    /// thinning: keep probability; reorder: delayed fraction;
    /// corrupt_frames: bit-flip probability per spooled byte.
    double rate = 0.0;

    bool active_in(std::size_t bin, std::size_t total_bins) const noexcept {
        const std::size_t end =
            duration_bins == 0 ? total_bins : start_bin + duration_bins;
        return bin >= start_bin && bin < end;
    }
};

struct topology_event_spec {
    int pop = 0;  ///< the PoP whose OD flows are affected
    std::size_t start_bin = 0;
    std::size_t duration_bins = 1;
    /// Residual background volume on flows touching the PoP (0 = hard
    /// outage, 1 = no effect).
    double residual_scale = 0.05;

    bool active_in(std::size_t bin) const noexcept {
        return bin >= start_bin && bin < start_bin + duration_bins;
    }
};

struct detector_spec {
    std::size_t window = 32;
    std::size_t warmup = 16;
    std::size_t refit_interval = 8;
    int normal_dims = 2;
    double alpha = 0.999;  ///< Q-statistic confidence
};

struct drift_spec {
    bool enabled = false;
    std::size_t relearn_bins = 16;
    double degraded_confidence = 0.25;
    core::drift_options monitor{};
};

/// One point of the sweep: the same scenario world under a different
/// detector policy.
struct variant_spec {
    std::string name = "default";
    bool drift_enabled = false;    ///< recalibration on/off for this run
    std::uint64_t seed = 0;        ///< 0 = the scenario's seed
};

struct scenario_model {
    std::string name;
    std::string topology = "abilene";  ///< "abilene" | "geant"
    std::size_t bins = 48;
    std::uint64_t seed = 1;
    double mean_records_per_bin = 90.0;  ///< background density knob
    detector_spec detector{};
    drift_spec drift{};
    std::vector<regime_spec> regimes;
    std::vector<anomaly_spec> anomalies;
    std::vector<degradation_spec> degradations;
    std::vector<topology_event_spec> topology_events;
    std::vector<variant_spec> variants;  ///< never empty after parsing

    int od_count() const noexcept;   ///< from the topology name
    int pop_count() const noexcept;

    /// First bin at which a drift regime (step or gradual) begins, or
    /// `bins` when the scenario has none — the scorer's boundary
    /// between the stationary and drift phases.
    std::size_t drift_phase_start() const noexcept;
};

/// Build + validate a scenario from parsed config. Throws config_error
/// with the offending source line on any schema violation.
scenario_model parse_scenario(const config_file& file);

/// load_config + parse_scenario.
scenario_model load_scenario(const std::string& path);

}  // namespace tfd::scenario
