#include "scenario/model.h"

#include <set>
#include <stdexcept>

namespace tfd::scenario {

namespace {

constexpr const char* kScenarioKeys[] = {
    "name", "topology", "bins", "seed", "mean_records_per_bin", nullptr};
constexpr const char* kDetectorKeys[] = {
    "window", "warmup", "refit_interval", "normal_dims", "alpha", nullptr};
constexpr const char* kDriftKeys[] = {
    "relearn_bins", "degraded_confidence", "ph_delta",    "ph_lambda",
    "min_shift_bins", "watchdog_window",   "storm_rate",  nullptr};
constexpr const char* kRegimeKeys[] = {
    "kind",      "start_bin",        "duration_bins", "volume_scale",
    "host_rank_offset", "amplitude", "period_bins",   nullptr};
constexpr const char* kAnomalyKeys[] = {
    "type", "start_bin", "duration_bins", "od", "packets_per_second",
    nullptr};
constexpr const char* kDegradationKeys[] = {
    "kind", "start_bin", "duration_bins", "rate", nullptr};
constexpr const char* kTopologyEventKeys[] = {
    "pop", "start_bin", "duration_bins", "residual_scale", nullptr};
constexpr const char* kVariantKeys[] = {"name", "drift", "seed", nullptr};

[[noreturn]] void fail(std::size_t line, const std::string& msg) {
    throw config_error(line, msg);
}

/// The entry's line for error messages, falling back to the section
/// header when the key is absent.
std::size_t line_of(const config_section& s, const char* key) {
    const config_entry* e = s.find(key);
    return e ? e->line : s.line;
}

/// Scenario files use snake_case type names; traffic::parse_anomaly
/// speaks the paper's Table-1 labels ("DDOS", "Flash Crowd"). Accept
/// both.
traffic::anomaly_type parse_anomaly_label(const std::string& name,
                                          std::size_t line) {
    using t = traffic::anomaly_type;
    if (name == "alpha") return t::alpha;
    if (name == "dos") return t::dos;
    if (name == "ddos") return t::ddos;
    if (name == "flash_crowd") return t::flash_crowd;
    if (name == "port_scan") return t::port_scan;
    if (name == "network_scan") return t::network_scan;
    if (name == "worm") return t::worm;
    if (name == "outage") return t::outage;
    if (name == "point_multipoint") return t::point_multipoint;
    try {
        return traffic::parse_anomaly(name);
    } catch (const std::invalid_argument& e) {
        fail(line, e.what());
    }
}

}  // namespace

regime_kind parse_regime_kind(const std::string& name, std::size_t line) {
    if (name == "baseline") return regime_kind::baseline;
    if (name == "diurnal") return regime_kind::diurnal;
    if (name == "flash_crowd") return regime_kind::flash_crowd;
    if (name == "step_drift") return regime_kind::step_drift;
    if (name == "gradual_drift") return regime_kind::gradual_drift;
    fail(line, "unknown regime kind '" + name +
                   "' (baseline|diurnal|flash_crowd|step_drift|"
                   "gradual_drift)");
}

const char* regime_kind_name(regime_kind k) noexcept {
    switch (k) {
        case regime_kind::baseline: return "baseline";
        case regime_kind::diurnal: return "diurnal";
        case regime_kind::flash_crowd: return "flash_crowd";
        case regime_kind::step_drift: return "step_drift";
        case regime_kind::gradual_drift: return "gradual_drift";
    }
    return "unknown";
}

degradation_kind parse_degradation_kind(const std::string& name,
                                        std::size_t line) {
    if (name == "thinning") return degradation_kind::thinning;
    if (name == "feed_gap") return degradation_kind::feed_gap;
    if (name == "reorder") return degradation_kind::reorder;
    if (name == "corrupt_frames") return degradation_kind::corrupt_frames;
    fail(line, "unknown degradation kind '" + name +
                   "' (thinning|feed_gap|reorder|corrupt_frames)");
}

const char* degradation_kind_name(degradation_kind k) noexcept {
    switch (k) {
        case degradation_kind::thinning: return "thinning";
        case degradation_kind::feed_gap: return "feed_gap";
        case degradation_kind::reorder: return "reorder";
        case degradation_kind::corrupt_frames: return "corrupt_frames";
    }
    return "unknown";
}

int scenario_model::od_count() const noexcept {
    return topology == "geant" ? 22 * 22 : 11 * 11;
}

int scenario_model::pop_count() const noexcept {
    return topology == "geant" ? 22 : 11;
}

std::size_t scenario_model::drift_phase_start() const noexcept {
    std::size_t start = bins;
    for (const regime_spec& r : regimes)
        if ((r.kind == regime_kind::step_drift ||
             r.kind == regime_kind::gradual_drift) &&
            r.start_bin < start)
            start = r.start_bin;
    return start;
}

scenario_model parse_scenario(const config_file& file) {
    // Reject unknown section names up front — same policy as unknown
    // keys: a typo fails loudly.
    static const std::set<std::string> known = {
        "scenario", "detector", "drift",          "regime",
        "anomaly",  "degradation", "topology_event", "variant"};
    for (const config_section& s : file.sections)
        if (known.find(s.name) == known.end())
            fail(s.line, "unknown section [" + s.name + "]");

    const config_section* sc = file.first("scenario");
    if (!sc) fail(0, "missing required [scenario] section");
    sc->require_keys(kScenarioKeys);

    scenario_model m;
    m.name = sc->get_string("name");
    if (m.name.empty()) fail(sc->line, "[scenario] requires a name");
    m.topology = sc->get_string("topology", "abilene");
    if (m.topology != "abilene" && m.topology != "geant")
        fail(line_of(*sc, "topology"),
             "topology must be 'abilene' or 'geant'");
    m.bins = sc->get_count("bins", m.bins);
    if (m.bins == 0) fail(line_of(*sc, "bins"), "bins must be >= 1");
    m.seed = sc->get_count("seed", m.seed);
    m.mean_records_per_bin =
        sc->get_number("mean_records_per_bin", m.mean_records_per_bin);
    if (m.mean_records_per_bin <= 0.0)
        fail(line_of(*sc, "mean_records_per_bin"),
             "mean_records_per_bin must be > 0");

    if (const config_section* d = file.first("detector")) {
        d->require_keys(kDetectorKeys);
        m.detector.window = d->get_count("window", m.detector.window);
        m.detector.warmup = d->get_count("warmup", m.detector.warmup);
        m.detector.refit_interval =
            d->get_count("refit_interval", m.detector.refit_interval);
        m.detector.normal_dims = static_cast<int>(
            d->get_int("normal_dims", m.detector.normal_dims));
        m.detector.alpha = d->get_number("alpha", m.detector.alpha);
        if (m.detector.window < 2)
            fail(line_of(*d, "window"), "window must be >= 2");
        if (m.detector.warmup < 1 || m.detector.warmup > m.detector.window)
            fail(line_of(*d, "warmup"), "warmup must be in [1, window]");
        if (m.detector.refit_interval == 0)
            fail(line_of(*d, "refit_interval"),
                 "refit_interval must be >= 1");
        if (m.detector.normal_dims < 1)
            fail(line_of(*d, "normal_dims"), "normal_dims must be >= 1");
        if (m.detector.alpha <= 0.0 || m.detector.alpha >= 1.0)
            fail(line_of(*d, "alpha"), "alpha must be in (0, 1)");
    }

    if (const config_section* d = file.first("drift")) {
        d->require_keys(kDriftKeys);
        m.drift.enabled = true;
        m.drift.relearn_bins =
            d->get_count("relearn_bins", m.drift.relearn_bins);
        m.drift.degraded_confidence =
            d->get_number("degraded_confidence", m.drift.degraded_confidence);
        m.drift.monitor.ph_delta =
            d->get_number("ph_delta", m.drift.monitor.ph_delta);
        m.drift.monitor.ph_lambda =
            d->get_number("ph_lambda", m.drift.monitor.ph_lambda);
        m.drift.monitor.min_shift_bins = static_cast<std::size_t>(
            d->get_count("min_shift_bins", m.drift.monitor.min_shift_bins));
        m.drift.monitor.watchdog_window = static_cast<std::size_t>(
            d->get_count("watchdog_window", m.drift.monitor.watchdog_window));
        m.drift.monitor.storm_rate =
            d->get_number("storm_rate", m.drift.monitor.storm_rate);
        if (m.drift.relearn_bins < 2 ||
            m.drift.relearn_bins > m.detector.window)
            fail(line_of(*d, "relearn_bins"),
                 "relearn_bins must be in [2, detector window]");
        if (m.drift.degraded_confidence < 0.0 ||
            m.drift.degraded_confidence > 1.0)
            fail(line_of(*d, "degraded_confidence"),
                 "degraded_confidence must be in [0, 1]");
        if (m.drift.monitor.ph_lambda <= 0.0)
            fail(line_of(*d, "ph_lambda"), "ph_lambda must be > 0");
        if (m.drift.monitor.ph_delta < 0.0)
            fail(line_of(*d, "ph_delta"), "ph_delta must be >= 0");
        if (m.drift.monitor.min_shift_bins == 0)
            fail(line_of(*d, "min_shift_bins"),
                 "min_shift_bins must be >= 1");
        if (m.drift.monitor.watchdog_window == 0)
            fail(line_of(*d, "watchdog_window"),
                 "watchdog_window must be >= 1");
        if (m.drift.monitor.storm_rate <= 0.0 ||
            m.drift.monitor.storm_rate > 1.0)
            fail(line_of(*d, "storm_rate"), "storm_rate must be in (0, 1]");
    }

    for (const config_section* s : file.all("regime")) {
        s->require_keys(kRegimeKeys);
        regime_spec r;
        const config_entry* kind = s->find("kind");
        if (!kind) fail(s->line, "[regime] requires a kind");
        r.kind = parse_regime_kind(kind->value, kind->line);
        r.start_bin = s->get_count("start_bin", 0);
        r.duration_bins = s->get_count("duration_bins", 0);
        r.volume_scale = s->get_number("volume_scale", 1.0);
        r.host_rank_offset = s->get_count("host_rank_offset", 0);
        r.amplitude = s->get_number("amplitude", 0.0);
        r.period_bins = s->get_count("period_bins", 24);
        if (r.start_bin >= m.bins)
            fail(line_of(*s, "start_bin"),
                 "regime start_bin is past the scenario's last bin");
        if (r.volume_scale <= 0.0)
            fail(line_of(*s, "volume_scale"), "volume_scale must be > 0");
        if (r.kind == regime_kind::diurnal && r.period_bins == 0)
            fail(line_of(*s, "period_bins"),
                 "diurnal regime needs period_bins >= 1");
        if (r.kind == regime_kind::gradual_drift && r.duration_bins == 0)
            fail(line_of(*s, "duration_bins"),
                 "gradual_drift needs an explicit duration_bins for the "
                 "ramp");
        if ((r.kind == regime_kind::diurnal ||
             r.kind == regime_kind::flash_crowd) &&
            r.amplitude < 0.0)
            fail(line_of(*s, "amplitude"), "amplitude must be >= 0");
        m.regimes.push_back(r);
    }

    for (const config_section* s : file.all("anomaly")) {
        s->require_keys(kAnomalyKeys);
        anomaly_spec a;
        const config_entry* type = s->find("type");
        if (!type) fail(s->line, "[anomaly] requires a type");
        a.type = parse_anomaly_label(type->value, type->line);
        if (a.type == traffic::anomaly_type::none)
            fail(type->line, "anomaly type 'none' plants nothing");
        a.start_bin = s->get_count("start_bin", 0);
        a.duration_bins = s->get_count("duration_bins", 1);
        a.od = static_cast<int>(s->get_int("od", -1));
        a.packets_per_second = s->get_number("packets_per_second", 0.0);
        if (a.start_bin >= m.bins)
            fail(line_of(*s, "start_bin"),
                 "anomaly start_bin is past the scenario's last bin");
        if (a.duration_bins == 0)
            fail(line_of(*s, "duration_bins"),
                 "anomaly duration_bins must be >= 1");
        if (a.od < -1 || a.od >= m.od_count())
            fail(line_of(*s, "od"), "od out of range for topology " +
                                        m.topology);
        if (a.packets_per_second < 0.0)
            fail(line_of(*s, "packets_per_second"),
                 "packets_per_second must be >= 0");
        m.anomalies.push_back(a);
    }

    for (const config_section* s : file.all("degradation")) {
        s->require_keys(kDegradationKeys);
        degradation_spec d;
        const config_entry* kind = s->find("kind");
        if (!kind) fail(s->line, "[degradation] requires a kind");
        d.kind = parse_degradation_kind(kind->value, kind->line);
        d.start_bin = s->get_count("start_bin", 0);
        d.duration_bins = s->get_count("duration_bins", 0);
        d.rate = s->get_number("rate", 0.0);
        if (d.start_bin >= m.bins)
            fail(line_of(*s, "start_bin"),
                 "degradation start_bin is past the scenario's last bin");
        switch (d.kind) {
            case degradation_kind::thinning:
                if (d.rate <= 0.0 || d.rate > 1.0)
                    fail(line_of(*s, "rate"),
                         "thinning rate is the keep probability, in (0, 1]");
                break;
            case degradation_kind::reorder:
            case degradation_kind::corrupt_frames:
                if (d.rate < 0.0 || d.rate > 1.0)
                    fail(line_of(*s, "rate"), "rate must be in [0, 1]");
                break;
            case degradation_kind::feed_gap:
                break;  // rate unused
        }
        m.degradations.push_back(d);
    }

    for (const config_section* s : file.all("topology_event")) {
        s->require_keys(kTopologyEventKeys);
        topology_event_spec t;
        t.pop = static_cast<int>(s->get_int("pop", 0));
        t.start_bin = s->get_count("start_bin", 0);
        t.duration_bins = s->get_count("duration_bins", 1);
        t.residual_scale = s->get_number("residual_scale", t.residual_scale);
        if (t.pop < 0 || t.pop >= m.pop_count())
            fail(line_of(*s, "pop"), "pop out of range for topology " +
                                         m.topology);
        if (t.start_bin >= m.bins)
            fail(line_of(*s, "start_bin"),
                 "topology_event start_bin is past the scenario's last bin");
        if (t.duration_bins == 0)
            fail(line_of(*s, "duration_bins"),
                 "topology_event duration_bins must be >= 1");
        if (t.residual_scale < 0.0 || t.residual_scale > 1.0)
            fail(line_of(*s, "residual_scale"),
                 "residual_scale must be in [0, 1]");
        m.topology_events.push_back(t);
    }

    std::set<std::string> variant_names;
    for (const config_section* s : file.all("variant")) {
        s->require_keys(kVariantKeys);
        variant_spec v;
        v.name = s->get_string("name");
        if (v.name.empty()) fail(s->line, "[variant] requires a name");
        if (!variant_names.insert(v.name).second)
            fail(s->line, "duplicate variant name '" + v.name + "'");
        v.drift_enabled = s->get_bool("drift", m.drift.enabled);
        if (v.drift_enabled && !m.drift.enabled)
            fail(line_of(*s, "drift"),
                 "variant enables drift but the scenario has no [drift] "
                 "section to configure it");
        v.seed = s->get_count("seed", 0);
        m.variants.push_back(std::move(v));
    }
    if (m.variants.empty()) {
        variant_spec v;
        v.name = "default";
        v.drift_enabled = m.drift.enabled;
        m.variants.push_back(std::move(v));
    }

    return m;
}

scenario_model load_scenario(const std::string& path) {
    return parse_scenario(load_config(path));
}

}  // namespace tfd::scenario
