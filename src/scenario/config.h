// tfd::scenario — plain-text config parsing for declarative scenarios.
//
// The scenario engine is driven by config files, not C++ edits: a
// campaign is a `.scn` file an operator writes, and everything the
// runner does is derived from it. The format is deliberately small —
// INI-style sections with `key = value` entries:
//
//   # comment (';' also works)
//   [scenario]
//   name = drift_step
//   bins = 96
//
//   [regime]            <- section names repeat; order is preserved
//   kind = step_drift
//
// No quoting, no escapes, no line continuations: values run from the
// first non-space after '=' to the end of line (inline comments are
// NOT stripped from values — a '#' after '=' is data). Keys within a
// section may repeat at the syntax level; the model layer decides
// (and rejects duplicates where they are ambiguous).
//
// Every entry carries its 1-based line number so validation errors in
// the model layer point at the offending line of the file, not at a
// C++ call site.
#pragma once

#include <cstdint>
#include <istream>
#include <stdexcept>
#include <string>
#include <vector>

namespace tfd::scenario {

/// Parse or validation failure; `line` is 1-based (0 = whole file).
class config_error : public std::runtime_error {
public:
    config_error(std::size_t line, const std::string& msg)
        : std::runtime_error(line > 0 ? "line " + std::to_string(line) +
                                            ": " + msg
                                      : msg),
          line_(line) {}

    std::size_t line() const noexcept { return line_; }

private:
    std::size_t line_;
};

struct config_entry {
    std::string key;
    std::string value;
    std::size_t line = 0;  ///< 1-based source line
};

struct config_section {
    std::string name;
    std::size_t line = 0;  ///< 1-based line of the [header]
    std::vector<config_entry> entries;  ///< in file order

    /// Last value for `key`, or nullptr when absent.
    const config_entry* find(const std::string& key) const;
    bool has(const std::string& key) const { return find(key) != nullptr; }

    /// Typed getters: return `fallback` when the key is absent; throw
    /// config_error (pointing at the entry's line) when the value does
    /// not parse as the requested type.
    std::string get_string(const std::string& key,
                           const std::string& fallback = "") const;
    double get_number(const std::string& key, double fallback) const;
    std::uint64_t get_count(const std::string& key,
                            std::uint64_t fallback) const;
    std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
    bool get_bool(const std::string& key, bool fallback) const;  // on/off,
                                                                 // true/false,
                                                                 // yes/no, 1/0

    /// Throw config_error if any entry's key is not in `allowed`
    /// (nullptr-terminated array) — the "validated" in validated
    /// scenario model: a typo'd knob fails the load, it does not
    /// silently fall back to a default.
    void require_keys(const char* const* allowed) const;
};

struct config_file {
    std::vector<config_section> sections;  ///< in file order

    /// First section named `name`, or nullptr.
    const config_section* first(const std::string& name) const;
    /// Every section named `name`, in file order.
    std::vector<const config_section*> all(const std::string& name) const;
};

/// Parse a config stream. Throws config_error on malformed lines
/// (entries before any [section], missing '=', empty key, unterminated
/// header).
config_file parse_config(std::istream& in);

/// Convenience: parse from a string (tests, embedded campaigns).
config_file parse_config_string(const std::string& text);

/// Convenience: open and parse a file; throws config_error (line 0)
/// when the file cannot be read.
config_file load_config(const std::string& path);

}  // namespace tfd::scenario
