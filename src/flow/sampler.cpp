#include "flow/sampler.h"

#include <stdexcept>

namespace tfd::flow {

periodic_sampler::periodic_sampler(std::uint64_t rate, std::uint64_t phase)
    : rate_(rate), phase_(phase % (rate == 0 ? 1 : rate)) {
    if (rate < 1)
        throw std::invalid_argument("periodic_sampler: rate must be >= 1");
}

bool periodic_sampler::sample() noexcept {
    const bool keep = (offered_ % rate_) == phase_;
    ++offered_;
    if (keep) ++selected_;
    return keep;
}

void periodic_sampler::reset() noexcept {
    offered_ = 0;
    selected_ = 0;
}

std::vector<packet> thin(const std::vector<packet>& packets,
                         std::uint64_t rate, std::uint64_t phase) {
    if (rate <= 1) return packets;
    periodic_sampler s(rate, phase);
    std::vector<packet> out;
    out.reserve(packets.size() / rate + 1);
    for (const packet& p : packets)
        if (s.sample()) out.push_back(p);
    return out;
}

}  // namespace tfd::flow
