// tfd::flow — NetFlow-style flow capture.
//
// Aggregates a (sampled) packet stream observed at one ingress PoP into
// flow records keyed by 5-tuple. Records are exported when flush() is
// called (the networks studied export statistics every 5 minutes, so the
// natural usage is one capture per 5-minute bin) or when an idle/active
// timeout would have fired.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "flow/flow_record.h"
#include "flow/sampler.h"

namespace tfd::flow {

/// Options for the capture process.
struct capture_options {
    std::uint64_t sampling_rate = 1;  ///< periodic 1-in-N packet sampling
    int ingress_pop = -1;             ///< PoP id stamped on exported records
};

/// Packet-to-flow-record aggregation with periodic sampling, as performed
/// by router-embedded NetFlow/cflowd.
class flow_capture {
public:
    explicit flow_capture(const capture_options& opts = {});

    /// Offer one packet to the capture; it may be dropped by sampling.
    void add_packet(const packet& p);

    /// Offer a batch.
    void add_packets(const std::vector<packet>& ps);

    /// Export all current records and clear state. Record order is
    /// deterministic (sorted by first_us, then key) so downstream results
    /// are reproducible.
    std::vector<flow_record> flush();

    /// Number of distinct active flows.
    std::size_t active_flows() const noexcept { return table_.size(); }

    /// Packets offered / selected by the sampler so far (never reset by
    /// flush, matching router counters).
    std::uint64_t packets_offered() const noexcept { return sampler_.offered(); }
    std::uint64_t packets_selected() const noexcept {
        return sampler_.selected();
    }

private:
    capture_options opts_;
    periodic_sampler sampler_;
    std::unordered_map<flow_key, flow_record, flow_key_hash> table_;
};

}  // namespace tfd::flow
