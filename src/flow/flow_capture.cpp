#include "flow/flow_capture.h"

#include <algorithm>
#include <tuple>

namespace tfd::flow {

flow_capture::flow_capture(const capture_options& opts)
    : opts_(opts), sampler_(opts.sampling_rate) {}

void flow_capture::add_packet(const packet& p) {
    if (!sampler_.sample()) return;
    const flow_key key{p.src, p.dst, p.src_port, p.dst_port, p.protocol};
    auto [it, inserted] = table_.try_emplace(key);
    flow_record& r = it->second;
    if (inserted) {
        r.key = key;
        r.first_us = p.time_us;
        r.last_us = p.time_us;
        r.ingress_pop = opts_.ingress_pop;
    }
    r.packets += 1;
    r.bytes += p.bytes;
    r.first_us = std::min(r.first_us, p.time_us);
    r.last_us = std::max(r.last_us, p.time_us);
}

void flow_capture::add_packets(const std::vector<packet>& ps) {
    for (const packet& p : ps) add_packet(p);
}

std::vector<flow_record> flow_capture::flush() {
    std::vector<flow_record> out;
    out.reserve(table_.size());
    for (auto& [key, rec] : table_) out.push_back(rec);
    table_.clear();
    std::sort(out.begin(), out.end(),
              [](const flow_record& a, const flow_record& b) {
                  return std::tie(a.first_us, a.key.src.value, a.key.dst.value,
                                  a.key.src_port, a.key.dst_port,
                                  a.key.protocol) <
                         std::tie(b.first_us, b.key.src.value, b.key.dst.value,
                                  b.key.src_port, b.key.dst_port,
                                  b.key.protocol);
              });
    return out;
}

}  // namespace tfd::flow
