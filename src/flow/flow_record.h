// tfd::flow — packet and flow-record types.
//
// The measurement substrate mirrors what backbone operators collect:
// sampled packet headers aggregated into NetFlow-style flow records.
// Entropy histograms are built from these records, weighting each
// feature value by the record's packet count (the paper computes sample
// entropy of feature distributions constructed from packet counts).
#pragma once

#include <cstdint>
#include <functional>

#include "net/ip.h"

namespace tfd::flow {

/// The four packet-header fields the paper analyzes (Section 3).
enum class feature : int {
    src_ip = 0,
    src_port = 1,
    dst_ip = 2,
    dst_port = 3,
};

/// Number of traffic features (fixed at 4 throughout the paper).
inline constexpr int feature_count = 4;

/// Display name for a feature ("srcIP", "srcPort", "dstIP", "dstPort").
const char* feature_name(feature f) noexcept;

/// A sampled packet header (payloads are never collected on backbones).
struct packet {
    std::uint64_t time_us = 0;   ///< timestamp, microseconds
    net::ipv4 src;               ///< source address
    net::ipv4 dst;               ///< destination address
    std::uint16_t src_port = 0;  ///< transport source port
    std::uint16_t dst_port = 0;  ///< transport destination port
    std::uint8_t protocol = 6;   ///< IP protocol (6 = TCP, 17 = UDP, 1 = ICMP)
    std::uint32_t bytes = 0;     ///< IP length of this packet
};

/// 5-tuple flow key.
struct flow_key {
    net::ipv4 src;
    net::ipv4 dst;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    std::uint8_t protocol = 6;

    bool operator==(const flow_key&) const = default;
};

/// NetFlow-style record: a 5-tuple with sampled packet/byte counts and
/// first/last timestamps, annotated with the ingress PoP where the flow
/// was observed.
struct flow_record {
    flow_key key;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t first_us = 0;
    std::uint64_t last_us = 0;
    int ingress_pop = -1;  ///< PoP where the record was captured (-1 unknown)

    /// The value of a given traffic feature for this record.
    std::uint32_t feature_value(feature f) const noexcept;
};

/// Key extraction for hashing.
struct flow_key_hash {
    std::size_t operator()(const flow_key& k) const noexcept;
};

}  // namespace tfd::flow
