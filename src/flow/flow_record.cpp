#include "flow/flow_record.h"

namespace tfd::flow {

const char* feature_name(feature f) noexcept {
    switch (f) {
        case feature::src_ip: return "srcIP";
        case feature::src_port: return "srcPort";
        case feature::dst_ip: return "dstIP";
        case feature::dst_port: return "dstPort";
    }
    return "?";
}

std::uint32_t flow_record::feature_value(feature f) const noexcept {
    switch (f) {
        case feature::src_ip: return key.src.value;
        case feature::src_port: return key.src_port;
        case feature::dst_ip: return key.dst.value;
        case feature::dst_port: return key.dst_port;
    }
    return 0;
}

std::size_t flow_key_hash::operator()(const flow_key& k) const noexcept {
    // FNV-1a over the packed tuple.
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v, int bytes) {
        for (int i = 0; i < bytes; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 1099511628211ULL;
        }
    };
    mix(k.src.value, 4);
    mix(k.dst.value, 4);
    mix(k.src_port, 2);
    mix(k.dst_port, 2);
    mix(k.protocol, 1);
    return static_cast<std::size_t>(h);
}

}  // namespace tfd::flow
