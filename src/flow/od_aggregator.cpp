#include "flow/od_aggregator.h"

namespace tfd::flow {

std::optional<int> od_resolver::resolve(const flow_record& r) const noexcept {
    if (r.ingress_pop < 0 || r.ingress_pop >= topo_->pop_count())
        return std::nullopt;
    const auto egress = topo_->egress_pop(r.key.dst);
    if (!egress) return std::nullopt;
    return topo_->od_index(r.ingress_pop, *egress);
}

std::vector<binned_record> bin_records(const od_resolver& resolver,
                                       const std::vector<flow_record>& records,
                                       std::uint64_t bin_us,
                                       std::size_t* dropped) {
    std::vector<binned_record> out;
    out.reserve(records.size());
    std::size_t drop_count = 0;
    for (const flow_record& r : records) {
        const auto od = resolver.resolve(r);
        if (!od) {
            ++drop_count;
            continue;
        }
        out.push_back(binned_record{bin_index(r.first_us, bin_us), *od, r});
    }
    if (dropped) *dropped = drop_count;
    return out;
}

}  // namespace tfd::flow
