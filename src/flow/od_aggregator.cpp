#include "flow/od_aggregator.h"

namespace tfd::flow {

std::optional<int> od_resolver::resolve(const flow_record& r,
                                        resolve_failure* why) const noexcept {
    if (r.ingress_pop < 0 || r.ingress_pop >= topo_->pop_count()) {
        if (why) *why = resolve_failure::unknown_ingress;
        return std::nullopt;
    }
    const auto egress = topo_->egress_pop(r.key.dst);
    if (!egress) {
        if (why) *why = resolve_failure::unresolvable_egress;
        return std::nullopt;
    }
    if (why) *why = resolve_failure::none;
    return topo_->od_index(r.ingress_pop, *egress);
}

std::size_t od_resolver::resolve_batch(std::span<const flow_record> records,
                                       std::vector<int>& out,
                                       drop_counts* dropped) const {
    out.resize(records.size());
    std::size_t resolved = 0;
    resolve_failure why = resolve_failure::none;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto od = resolve(records[i], &why);
        if (od) {
            out[i] = *od;
            ++resolved;
            continue;
        }
        out[i] = -1;
        if (dropped) dropped->count(why);
    }
    return resolved;
}

std::vector<binned_record> bin_records(const od_resolver& resolver,
                                       std::span<const flow_record> records,
                                       std::uint64_t bin_us,
                                       drop_counts* dropped) {
    std::vector<binned_record> out;
    out.reserve(records.size());
    resolve_failure why = resolve_failure::none;
    for (const flow_record& r : records) {
        const auto od = resolver.resolve(r, &why);
        if (!od) {
            if (dropped) dropped->count(why);
            continue;
        }
        out.push_back(binned_record{bin_index(r.first_us, bin_us), *od, r});
    }
    return out;
}

}  // namespace tfd::flow
