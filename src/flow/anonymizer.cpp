#include "flow/anonymizer.h"

#include <stdexcept>

namespace tfd::flow {

anonymizer::anonymizer(int bits) : bits_(bits) {
    if (bits < 0 || bits > 32)
        throw std::invalid_argument("anonymizer: bits must be in [0,32]");
}

flow_record anonymizer::apply(const flow_record& r) const noexcept {
    flow_record out = r;
    out.key.src = net::mask_low_bits(r.key.src, bits_);
    out.key.dst = net::mask_low_bits(r.key.dst, bits_);
    return out;
}

packet anonymizer::apply(const packet& p) const noexcept {
    packet out = p;
    out.src = net::mask_low_bits(p.src, bits_);
    out.dst = net::mask_low_bits(p.dst, bits_);
    return out;
}

void anonymizer::apply(std::vector<flow_record>& records) const noexcept {
    for (flow_record& r : records) r = apply(r);
}

}  // namespace tfd::flow
