// tfd::flow — address anonymization.
//
// Abilene's public feed anonymizes flow data by zeroing the last 11 bits
// of source and destination addresses (Section 5). The paper measures the
// impact of this on detection (128 vs 132 anomalies on a week of Geant
// data); bench/anon_impact reproduces that experiment.
#pragma once

#include <vector>

#include "flow/flow_record.h"

namespace tfd::flow {

/// Masks the low `bits` bits of src/dst addresses in flow records and
/// packets. Ports and counts are untouched.
class anonymizer {
public:
    /// Throws std::invalid_argument if bits outside [0, 32].
    explicit anonymizer(int bits = 11);

    int bits() const noexcept { return bits_; }

    /// Anonymized copy of one record.
    flow_record apply(const flow_record& r) const noexcept;

    /// Anonymized copy of one packet.
    packet apply(const packet& p) const noexcept;

    /// In-place anonymization of a record batch.
    void apply(std::vector<flow_record>& records) const noexcept;

private:
    int bits_;
};

}  // namespace tfd::flow
