// tfd::flow — periodic packet sampling.
//
// Abilene samples 1 out of 100 packets, Geant 1 out of 1000, both
// periodically (every Nth packet), which is what router-embedded NetFlow
// implementations of the era did. The same mechanism implements the
// "thinning" of attack traces in the injection methodology (Section
// 6.3.1: "we thinned the original trace by selecting 1 out of every N
// packets").
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow_record.h"

namespace tfd::flow {

/// Deterministic periodic 1-in-N packet sampler.
class periodic_sampler {
public:
    /// rate == 1 keeps every packet. Throws std::invalid_argument if
    /// rate < 1. `phase` selects which residue class is kept (0 keeps the
    /// first packet seen).
    explicit periodic_sampler(std::uint64_t rate, std::uint64_t phase = 0);

    /// True if this packet is selected; advances the counter either way.
    bool sample() noexcept;

    /// Packets offered so far.
    std::uint64_t offered() const noexcept { return offered_; }
    /// Packets selected so far.
    std::uint64_t selected() const noexcept { return selected_; }
    /// Configured sampling rate N (1 in N).
    std::uint64_t rate() const noexcept { return rate_; }

    /// Reset counters (rate and phase are retained).
    void reset() noexcept;

private:
    std::uint64_t rate_;
    std::uint64_t phase_;
    std::uint64_t offered_ = 0;
    std::uint64_t selected_ = 0;
};

/// Convenience: periodically thin a packet vector (1 out of every N),
/// preserving order. rate == 1 returns the input unchanged.
std::vector<packet> thin(const std::vector<packet>& packets,
                         std::uint64_t rate, std::uint64_t phase = 0);

}  // namespace tfd::flow
