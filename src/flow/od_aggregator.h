// tfd::flow — OD-flow aggregation and time binning.
//
// "The traffic in an origin-destination pair consists of IP-level flows
// that enter the network at a given ingress PoP and exit at another
// egress PoP. ... This egress PoP resolution is accomplished by using BGP
// and ISIS routing tables" (Section 5). Here the ingress PoP comes from
// the capture location stamped on each record and the egress PoP from
// longest-prefix match on the destination address.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "flow/flow_record.h"
#include "net/topology.h"

namespace tfd::flow {

/// Duration of one timeseries bin; both networks report flow statistics
/// every 5 minutes.
inline constexpr std::uint64_t default_bin_us = 5ull * 60 * 1000 * 1000;

/// Bin index for a timestamp.
constexpr std::size_t bin_index(std::uint64_t time_us,
                                std::uint64_t bin_us = default_bin_us) {
    return static_cast<std::size_t>(time_us / bin_us);
}

/// Why a record could not be attributed to an OD flow.
enum class resolve_failure {
    none = 0,
    unknown_ingress,      ///< no (or out-of-range) ingress PoP stamped
    unresolvable_egress,  ///< destination outside every PoP prefix
};

/// Per-reason tallies of records dropped during OD attribution. Real
/// exports contain both kinds, and they point at different operational
/// problems (broken capture metadata vs. off-net destinations), so they
/// are counted separately.
struct drop_counts {
    std::size_t unknown_ingress = 0;
    std::size_t unresolvable_egress = 0;

    std::size_t total() const noexcept {
        return unknown_ingress + unresolvable_egress;
    }
    /// Tally one failure (resolve_failure::none is ignored).
    void count(resolve_failure why) noexcept {
        if (why == resolve_failure::unknown_ingress) ++unknown_ingress;
        else if (why == resolve_failure::unresolvable_egress)
            ++unresolvable_egress;
    }
    drop_counts& operator+=(const drop_counts& o) noexcept {
        unknown_ingress += o.unknown_ingress;
        unresolvable_egress += o.unresolvable_egress;
        return *this;
    }
};

/// Resolves flow records to OD-flow indices using the topology's egress
/// table. Records with unknown ingress or unresolvable egress are counted
/// and skipped (real exports contain such flows too).
class od_resolver {
public:
    explicit od_resolver(const net::topology& topo) : topo_(&topo) {}

    /// OD index for a record, or std::nullopt if unresolvable. If `why`
    /// is non-null it receives the failure reason (resolve_failure::none
    /// on success).
    std::optional<int> resolve(const flow_record& r,
                               resolve_failure* why = nullptr) const noexcept;

    /// Batch resolve for the shard layer: writes one OD index per record
    /// into `out` (-1 for unresolvable), sized to `records.size()`.
    /// Per-reason drop tallies are accumulated into `dropped` if non-null.
    /// Returns the number of resolved records.
    std::size_t resolve_batch(std::span<const flow_record> records,
                              std::vector<int>& out,
                              drop_counts* dropped = nullptr) const;

    const net::topology& topo() const noexcept { return *topo_; }

private:
    const net::topology* topo_;
};

/// A flow record attributed to an OD flow and a timebin.
struct binned_record {
    std::size_t bin = 0;
    int od = 0;
    flow_record record;
};

/// Attribute a batch of records to (bin, OD); unresolvable records are
/// dropped, with per-reason tallies accumulated into `dropped` if
/// non-null.
std::vector<binned_record> bin_records(const od_resolver& resolver,
                                       std::span<const flow_record> records,
                                       std::uint64_t bin_us = default_bin_us,
                                       drop_counts* dropped = nullptr);

}  // namespace tfd::flow
