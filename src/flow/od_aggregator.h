// tfd::flow — OD-flow aggregation and time binning.
//
// "The traffic in an origin-destination pair consists of IP-level flows
// that enter the network at a given ingress PoP and exit at another
// egress PoP. ... This egress PoP resolution is accomplished by using BGP
// and ISIS routing tables" (Section 5). Here the ingress PoP comes from
// the capture location stamped on each record and the egress PoP from
// longest-prefix match on the destination address.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "flow/flow_record.h"
#include "net/topology.h"

namespace tfd::flow {

/// Duration of one timeseries bin; both networks report flow statistics
/// every 5 minutes.
inline constexpr std::uint64_t default_bin_us = 5ull * 60 * 1000 * 1000;

/// Bin index for a timestamp.
constexpr std::size_t bin_index(std::uint64_t time_us,
                                std::uint64_t bin_us = default_bin_us) {
    return static_cast<std::size_t>(time_us / bin_us);
}

/// Resolves flow records to OD-flow indices using the topology's egress
/// table. Records with unknown ingress or unresolvable egress are counted
/// and skipped (real exports contain such flows too).
class od_resolver {
public:
    explicit od_resolver(const net::topology& topo) : topo_(&topo) {}

    /// OD index for a record, or std::nullopt if unresolvable.
    std::optional<int> resolve(const flow_record& r) const noexcept;

    const net::topology& topo() const noexcept { return *topo_; }

private:
    const net::topology* topo_;
};

/// A flow record attributed to an OD flow and a timebin.
struct binned_record {
    std::size_t bin = 0;
    int od = 0;
    flow_record record;
};

/// Attribute a batch of records to (bin, OD); unresolvable records are
/// dropped and counted in `dropped` if non-null.
std::vector<binned_record> bin_records(const od_resolver& resolver,
                                       const std::vector<flow_record>& records,
                                       std::uint64_t bin_us = default_bin_us,
                                       std::size_t* dropped = nullptr);

}  // namespace tfd::flow
