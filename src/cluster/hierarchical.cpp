#include "cluster/hierarchical.h"

#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace tfd::cluster {

const char* linkage_name(linkage l) noexcept {
    switch (l) {
        case linkage::single: return "single";
        case linkage::complete: return "complete";
        case linkage::average: return "average";
        case linkage::ward: return "ward";
    }
    return "?";
}

std::vector<int> dendrogram::cut(std::size_t k) const {
    if (k == 0 || k > points)
        throw std::invalid_argument("dendrogram::cut: k out of range");
    // Union-find over point and merge ids.
    std::vector<int> parent(points + merges.size());
    std::iota(parent.begin(), parent.end(), 0);
    std::function<int(int)> find = [&](int v) {
        while (parent[v] != v) {
            parent[v] = parent[parent[v]];
            v = parent[v];
        }
        return v;
    };
    // Apply the first (points - k) merges.
    const std::size_t apply = points - k;
    for (std::size_t i = 0; i < apply; ++i) {
        const auto& m = merges[i];
        const int ra = find(m.a), rb = find(m.b);
        const int id = static_cast<int>(points + i);
        parent[ra] = id;
        parent[rb] = id;
    }
    // Dense relabel in order of first appearance.
    std::vector<int> labels(points, -1);
    std::vector<int> root_label;
    std::vector<int> roots;
    for (std::size_t i = 0; i < points; ++i) {
        const int r = find(static_cast<int>(i));
        int lbl = -1;
        for (std::size_t j = 0; j < roots.size(); ++j)
            if (roots[j] == r) {
                lbl = static_cast<int>(j);
                break;
            }
        if (lbl < 0) {
            lbl = static_cast<int>(roots.size());
            roots.push_back(r);
        }
        labels[i] = lbl;
    }
    return labels;
}

dendrogram agglomerate(const linalg::matrix& x, linkage link) {
    const std::size_t n = x.rows();
    if (n == 0) throw std::invalid_argument("agglomerate: empty data");

    dendrogram out;
    out.points = n;
    if (n == 1) return out;

    const bool squared = (link == linkage::ward);

    // Dense condensed distance matrix between active clusters.
    std::vector<double> dist(n * n, 0.0);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j) {
            double d2 = squared_distance(x.row(i), x.row(j));
            const double d = squared ? d2 : std::sqrt(d2);
            dist[i * n + j] = d;
            dist[j * n + i] = d;
        }

    std::vector<bool> active(n, true);
    std::vector<std::size_t> size(n, 1);
    std::vector<int> cluster_id(n);
    std::iota(cluster_id.begin(), cluster_id.end(), 0);

    for (std::size_t step = 0; step + 1 < n; ++step) {
        // Find the closest active pair (deterministic lowest-index ties).
        double best = std::numeric_limits<double>::max();
        std::size_t bi = 0, bj = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (!active[i]) continue;
            for (std::size_t j = i + 1; j < n; ++j) {
                if (!active[j]) continue;
                const double d = dist[i * n + j];
                if (d < best) {
                    best = d;
                    bi = i;
                    bj = j;
                }
            }
        }

        merge_step m;
        m.a = cluster_id[bi];
        m.b = cluster_id[bj];
        m.distance = squared ? std::sqrt(best) : best;
        out.merges.push_back(m);

        // Lance–Williams update into slot bi; deactivate bj.
        const double ni = static_cast<double>(size[bi]);
        const double nj = static_cast<double>(size[bj]);
        for (std::size_t t = 0; t < n; ++t) {
            if (!active[t] || t == bi || t == bj) continue;
            const double dit = dist[bi * n + t];
            const double djt = dist[bj * n + t];
            double nd = 0.0;
            switch (link) {
                case linkage::single:
                    nd = std::min(dit, djt);
                    break;
                case linkage::complete:
                    nd = std::max(dit, djt);
                    break;
                case linkage::average:
                    nd = (ni * dit + nj * djt) / (ni + nj);
                    break;
                case linkage::ward: {
                    const double nt = static_cast<double>(size[t]);
                    const double denom = ni + nj + nt;
                    nd = ((ni + nt) * dit + (nj + nt) * djt - nt * best) / denom;
                    break;
                }
            }
            dist[bi * n + t] = nd;
            dist[t * n + bi] = nd;
        }
        active[bj] = false;
        size[bi] += size[bj];
        cluster_id[bi] = static_cast<int>(n + step);
    }
    return out;
}

clustering hierarchical_cluster(const linalg::matrix& x, std::size_t k,
                                linkage link) {
    const auto tree = agglomerate(x, link);
    clustering out;
    out.k = k;
    out.assignment = tree.cut(k);
    out.centers.resize(k, x.cols());
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < x.rows(); ++i) {
        const auto c = static_cast<std::size_t>(out.assignment[i]);
        ++counts[c];
        const auto row = x.row(i);
        for (std::size_t j = 0; j < x.cols(); ++j) out.centers(c, j) += row[j];
    }
    for (std::size_t c = 0; c < k; ++c)
        if (counts[c] > 0)
            for (std::size_t j = 0; j < x.cols(); ++j)
                out.centers(c, j) /= static_cast<double>(counts[c]);
    out.inertia = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i)
        out.inertia += squared_distance(
            x.row(i), out.centers.row(static_cast<std::size_t>(out.assignment[i])));
    return out;
}

}  // namespace tfd::cluster
