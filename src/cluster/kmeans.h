// tfd::cluster — k-means clustering (Section 4.3).
//
// Lloyd's algorithm with k-means++ style seeding from a deterministic
// RNG: "the algorithm begins with k initial random seeds ... It then
// alternates between assigning each point in the dataset to the nearest
// cluster center, and updating the mean of each cluster." Distances are
// Euclidean in entropy space, as in the paper.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace tfd::cluster {

/// A clustering of n points into k clusters.
struct clustering {
    std::vector<int> assignment;   ///< point -> cluster id in [0, k)
    linalg::matrix centers;        ///< k x dims cluster means
    std::size_t k = 0;
    int iterations = 0;            ///< iterations until convergence
    double inertia = 0.0;          ///< sum of squared distances to centers

    std::vector<std::size_t> cluster_sizes() const;
    /// Indices of the points in cluster c.
    std::vector<std::size_t> members(int c) const;
};

/// Options for k-means.
struct kmeans_options {
    std::uint64_t seed = 17;   ///< seeding determinism
    int max_iterations = 200;  ///< Lloyd iteration cap
    bool plus_plus = true;     ///< k-means++ seeding (uniform if false)
};

/// Run k-means on points (rows of x). Throws std::invalid_argument if
/// k == 0 or k > number of points, or if x is empty.
clustering kmeans(const linalg::matrix& x, std::size_t k,
                  const kmeans_options& opts = {});

/// Squared Euclidean distance between two equal-length spans.
double squared_distance(std::span<const double> a, std::span<const double> b);

}  // namespace tfd::cluster
