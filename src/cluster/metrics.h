// tfd::cluster — cluster-count selection metrics (Section 4.3).
//
// With X the n x p data, Xbar the k x p cluster means and Z the n x k
// indicator matrix, the paper defines T = X'X (total), B = Xbar'Z'Z Xbar
// (between) and W = T - B (within). Intra-cluster variation is trace(W),
// inter-cluster variation trace(B); a knee in these curves as k grows
// picks the cluster count (8-12 in both the paper's datasets).
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/hierarchical.h"
#include "cluster/kmeans.h"
#include "linalg/matrix.h"

namespace tfd::cluster {

/// Variation decomposition for one clustering.
struct cluster_variation {
    double trace_total = 0.0;    ///< trace(T)
    double trace_between = 0.0;  ///< trace(B) — inter-cluster variation
    double trace_within = 0.0;   ///< trace(W) — intra-cluster variation
};

/// Compute trace(T), trace(B), trace(W) for an assignment of the rows of
/// x into k clusters. Throws std::invalid_argument on size mismatch or
/// out-of-range labels.
cluster_variation variation(const linalg::matrix& x,
                            const std::vector<int>& assignment, std::size_t k);

/// One row of the Figure 10 curves.
struct variation_point {
    std::size_t k = 0;
    double within = 0.0;
    double between = 0.0;
};

/// Which algorithm to sweep.
enum class cluster_algorithm { kmeans_pp, hierarchical_single };

/// Sweep k over [k_min, k_max] computing trace(W) and trace(B) per k —
/// the Figure 10 model-selection curves.
std::vector<variation_point> variation_sweep(
    const linalg::matrix& x, std::size_t k_min, std::size_t k_max,
    cluster_algorithm algo, std::uint64_t seed = 17);

/// Heuristic knee locator: smallest k where the marginal drop in
/// trace(W) falls below `fraction` of the initial drop. Returns k_min if
/// the sweep is too short.
std::size_t knee_of(const std::vector<variation_point>& sweep,
                    double fraction = 0.15);

}  // namespace tfd::cluster
