#include "cluster/metrics.h"

#include <stdexcept>

namespace tfd::cluster {

cluster_variation variation(const linalg::matrix& x,
                            const std::vector<int>& assignment,
                            std::size_t k) {
    const std::size_t n = x.rows(), p = x.cols();
    if (assignment.size() != n)
        throw std::invalid_argument("variation: assignment size mismatch");

    // Cluster means.
    linalg::matrix means(k, p);
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
        const int c = assignment[i];
        if (c < 0 || static_cast<std::size_t>(c) >= k)
            throw std::invalid_argument("variation: label out of range");
        ++counts[c];
        const auto row = x.row(i);
        for (std::size_t j = 0; j < p; ++j) means(c, j) += row[j];
    }
    for (std::size_t c = 0; c < k; ++c)
        if (counts[c] > 0)
            for (std::size_t j = 0; j < p; ++j)
                means(c, j) /= static_cast<double>(counts[c]);

    cluster_variation out;
    // trace(T) = sum of squared entries of X.
    for (double v : x.data()) out.trace_total += v * v;
    // trace(B) = sum_c n_c ||mean_c||^2.
    for (std::size_t c = 0; c < k; ++c) {
        double m2 = 0.0;
        for (std::size_t j = 0; j < p; ++j) m2 += means(c, j) * means(c, j);
        out.trace_between += static_cast<double>(counts[c]) * m2;
    }
    out.trace_within = out.trace_total - out.trace_between;
    return out;
}

std::vector<variation_point> variation_sweep(const linalg::matrix& x,
                                             std::size_t k_min,
                                             std::size_t k_max,
                                             cluster_algorithm algo,
                                             std::uint64_t seed) {
    if (k_min == 0 || k_min > k_max)
        throw std::invalid_argument("variation_sweep: bad k range");
    k_max = std::min(k_max, x.rows());

    std::vector<variation_point> out;
    // The dendrogram is k-independent: build once, cut repeatedly.
    dendrogram tree;
    if (algo == cluster_algorithm::hierarchical_single)
        tree = agglomerate(x, linkage::single);

    for (std::size_t k = k_min; k <= k_max; ++k) {
        std::vector<int> labels;
        if (algo == cluster_algorithm::kmeans_pp) {
            kmeans_options opts;
            opts.seed = seed;
            labels = kmeans(x, k, opts).assignment;
        } else {
            labels = tree.cut(k);
        }
        const auto v = variation(x, labels, k);
        out.push_back({k, v.trace_within, v.trace_between});
    }
    return out;
}

std::size_t knee_of(const std::vector<variation_point>& sweep,
                    double fraction) {
    if (sweep.size() < 3) return sweep.empty() ? 0 : sweep.front().k;
    const double initial_drop = sweep[0].within - sweep[1].within;
    if (initial_drop <= 0.0) return sweep.front().k;
    for (std::size_t i = 1; i + 1 < sweep.size(); ++i) {
        const double drop = sweep[i].within - sweep[i + 1].within;
        if (drop < fraction * initial_drop) return sweep[i].k;
    }
    return sweep.back().k;
}

}  // namespace tfd::cluster
