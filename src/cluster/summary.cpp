#include "cluster/summary.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace tfd::cluster {

char signature_char(signature_sign s) noexcept {
    switch (s) {
        case signature_sign::zero: return '0';
        case signature_sign::positive: return '+';
        case signature_sign::negative: return '-';
    }
    return '?';
}

std::string cluster_summary::signature_string() const {
    std::string out;
    for (std::size_t i = 0; i < signature.size(); ++i) {
        if (i) out += ' ';
        out += signature_char(signature[i]);
    }
    return out;
}

std::vector<cluster_summary> summarize_clusters(
    const linalg::matrix& x, const std::vector<int>& assignment, std::size_t k,
    double sigma_threshold) {
    const std::size_t n = x.rows(), p = x.cols();
    if (assignment.size() != n)
        throw std::invalid_argument("summarize_clusters: size mismatch");

    std::vector<cluster_summary> out(k);
    for (std::size_t c = 0; c < k; ++c) {
        out[c].cluster = static_cast<int>(c);
        out[c].mean.assign(p, 0.0);
        out[c].stddev.assign(p, 0.0);
        out[c].signature.assign(p, signature_sign::zero);
    }

    for (std::size_t i = 0; i < n; ++i) {
        const int c = assignment[i];
        if (c < 0 || static_cast<std::size_t>(c) >= k)
            throw std::invalid_argument("summarize_clusters: label out of range");
        ++out[c].size;
        const auto row = x.row(i);
        for (std::size_t j = 0; j < p; ++j) out[c].mean[j] += row[j];
    }
    for (auto& s : out)
        if (s.size > 0)
            for (double& m : s.mean) m /= static_cast<double>(s.size);

    for (std::size_t i = 0; i < n; ++i) {
        const auto c = static_cast<std::size_t>(assignment[i]);
        const auto row = x.row(i);
        for (std::size_t j = 0; j < p; ++j) {
            const double d = row[j] - out[c].mean[j];
            out[c].stddev[j] += d * d;
        }
    }
    for (auto& s : out) {
        if (s.size > 1)
            for (double& v : s.stddev)
                v = std::sqrt(v / static_cast<double>(s.size - 1));
        else
            for (double& v : s.stddev) v = 0.0;

        for (std::size_t j = 0; j < s.mean.size(); ++j) {
            // A zero-stddev singleton still earns a sign if clearly off 0.
            const double sd = s.stddev[j] > 1e-12 ? s.stddev[j] : 1e-12;
            if (s.mean[j] > sigma_threshold * sd)
                s.signature[j] = signature_sign::positive;
            else if (s.mean[j] < -sigma_threshold * sd)
                s.signature[j] = signature_sign::negative;
        }
    }
    return out;
}

std::vector<int> match_clusters(const std::vector<cluster_summary>& a,
                                const std::vector<cluster_summary>& b,
                                double max_distance) {
    std::vector<int> out(a.size(), -1);
    for (std::size_t i = 0; i < a.size(); ++i) {
        double best = std::numeric_limits<double>::max();
        for (std::size_t j = 0; j < b.size(); ++j) {
            if (a[i].mean.size() != b[j].mean.size()) continue;
            double d2 = 0.0;
            for (std::size_t c = 0; c < a[i].mean.size(); ++c) {
                const double d = a[i].mean[c] - b[j].mean[c];
                d2 += d * d;
            }
            const double d = std::sqrt(d2);
            if (d < best) {
                best = d;
                out[i] = static_cast<int>(j);
            }
        }
        if (best > max_distance) out[i] = -1;
    }
    return out;
}

}  // namespace tfd::cluster
