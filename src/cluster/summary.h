// tfd::cluster — cluster interpretation (Tables 6, 7, 8).
//
// Each cluster is summarized by its per-dimension mean and standard
// deviation in entropy space and by a 0/+/− signature: `+` if the mean
// is positive and more than `sigma_threshold` standard deviations from
// zero, `−` if negative likewise, `0` otherwise. The signatures are how
// the paper reads meaning into clusters (e.g. port scans: dstIP −−,
// dstPort ++).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "cluster/kmeans.h"
#include "linalg/matrix.h"

namespace tfd::cluster {

/// Per-dimension sign with the paper's 0/+/− convention.
enum class signature_sign { zero, positive, negative };

char signature_char(signature_sign s) noexcept;

/// Summary of one cluster in d-dimensional entropy space.
struct cluster_summary {
    int cluster = 0;
    std::size_t size = 0;
    std::vector<double> mean;    ///< per-dimension mean
    std::vector<double> stddev;  ///< per-dimension std deviation
    std::vector<signature_sign> signature;

    /// Signature as a string like "- 0 - +".
    std::string signature_string() const;
};

/// Summarize every cluster of an assignment over the rows of x.
/// `sigma_threshold` is the #standard deviations from zero the mean must
/// clear to earn a +/− (the paper uses 3 for Abilene, 2 for Geant).
std::vector<cluster_summary> summarize_clusters(
    const linalg::matrix& x, const std::vector<int>& assignment, std::size_t k,
    double sigma_threshold = 3.0);

/// Match each summary in `a` to the nearest summary in `b` by Euclidean
/// distance between cluster means; returns index into `b` per entry of
/// `a`, or -1 when the distance exceeds `max_distance` ("none" in the
/// paper's Table 8 correspondence column).
std::vector<int> match_clusters(const std::vector<cluster_summary>& a,
                                const std::vector<cluster_summary>& b,
                                double max_distance = 0.6);

}  // namespace tfd::cluster
