#include "cluster/kmeans.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "traffic/rng.h"

namespace tfd::cluster {

std::vector<std::size_t> clustering::cluster_sizes() const {
    std::vector<std::size_t> sizes(k, 0);
    for (int a : assignment) ++sizes[a];
    return sizes;
}

std::vector<std::size_t> clustering::members(int c) const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < assignment.size(); ++i)
        if (assignment[i] == c) out.push_back(i);
    return out;
}

double squared_distance(std::span<const double> a, std::span<const double> b) {
    if (a.size() != b.size())
        throw std::invalid_argument("squared_distance: length mismatch");
    double s = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        s += d * d;
    }
    return s;
}

namespace {

// k-means++ seeding: first center uniform, then proportional to squared
// distance from the nearest chosen center.
linalg::matrix seed_centers(const linalg::matrix& x, std::size_t k,
                            const kmeans_options& opts) {
    traffic::rng gen(opts.seed);
    const std::size_t n = x.rows(), d = x.cols();
    linalg::matrix centers(k, d);
    std::vector<std::size_t> chosen;

    auto copy_center = [&](std::size_t c, std::size_t point) {
        for (std::size_t j = 0; j < d; ++j) centers(c, j) = x(point, j);
        chosen.push_back(point);
    };

    copy_center(0, gen.uniform_int(n));
    if (!opts.plus_plus) {
        for (std::size_t c = 1; c < k; ++c) copy_center(c, gen.uniform_int(n));
        return centers;
    }

    std::vector<double> d2(n, std::numeric_limits<double>::max());
    for (std::size_t c = 1; c < k; ++c) {
        double total = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double dist =
                squared_distance(x.row(i), centers.row(c - 1));
            d2[i] = std::min(d2[i], dist);
            total += d2[i];
        }
        if (total <= 0.0) {
            copy_center(c, gen.uniform_int(n));  // all points identical
            continue;
        }
        double target = gen.uniform() * total;
        std::size_t pick = n - 1;
        for (std::size_t i = 0; i < n; ++i) {
            target -= d2[i];
            if (target <= 0.0) {
                pick = i;
                break;
            }
        }
        copy_center(c, pick);
    }
    return centers;
}

}  // namespace

clustering kmeans(const linalg::matrix& x, std::size_t k,
                  const kmeans_options& opts) {
    const std::size_t n = x.rows(), d = x.cols();
    if (n == 0 || d == 0) throw std::invalid_argument("kmeans: empty data");
    if (k == 0 || k > n)
        throw std::invalid_argument("kmeans: k must be in [1, #points]");

    clustering out;
    out.k = k;
    out.centers = seed_centers(x, k, opts);
    out.assignment.assign(n, -1);

    std::vector<double> sums(k * d);
    std::vector<std::size_t> counts(k);

    for (int iter = 0; iter < opts.max_iterations; ++iter) {
        bool changed = false;
        // Assignment step.
        for (std::size_t i = 0; i < n; ++i) {
            int best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (std::size_t c = 0; c < k; ++c) {
                const double dist = squared_distance(x.row(i), out.centers.row(c));
                if (dist < best_d) {
                    best_d = dist;
                    best = static_cast<int>(c);
                }
            }
            if (out.assignment[i] != best) {
                out.assignment[i] = best;
                changed = true;
            }
        }
        out.iterations = iter + 1;
        if (!changed && iter > 0) break;

        // Update step.
        std::fill(sums.begin(), sums.end(), 0.0);
        std::fill(counts.begin(), counts.end(), 0u);
        for (std::size_t i = 0; i < n; ++i) {
            const auto c = static_cast<std::size_t>(out.assignment[i]);
            ++counts[c];
            const auto row = x.row(i);
            for (std::size_t j = 0; j < d; ++j) sums[c * d + j] += row[j];
        }
        for (std::size_t c = 0; c < k; ++c) {
            if (counts[c] == 0) continue;  // keep previous center for empties
            for (std::size_t j = 0; j < d; ++j)
                out.centers(c, j) = sums[c * d + j] / static_cast<double>(counts[c]);
        }
    }

    out.inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        out.inertia += squared_distance(
            x.row(i), out.centers.row(static_cast<std::size_t>(out.assignment[i])));
    return out;
}

}  // namespace tfd::cluster
