// tfd::cluster — hierarchical agglomerative clustering (Section 4.3).
//
// "begins with each data point belonging to its own cluster. The
// algorithm then joins the nearest two points to form new clusters ...
// until one cluster contains all variables (or we have k clusters). The
// joining procedure is based on nearest-neighbors Euclidean distance."
// The paper's nearest-neighbour joining is single linkage; complete,
// average and Ward linkage are provided for the ablation bench.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/kmeans.h"
#include "linalg/matrix.h"

namespace tfd::cluster {

/// Inter-cluster distance rule.
enum class linkage {
    single,    ///< nearest neighbour (the paper's rule)
    complete,  ///< furthest neighbour
    average,   ///< unweighted average (UPGMA)
    ward,      ///< Ward's minimum-variance criterion
};

const char* linkage_name(linkage l) noexcept;

/// One merge step of the dendrogram (in merge order).
struct merge_step {
    int a = 0;           ///< cluster id merged (ids >= n are prior merges)
    int b = 0;
    double distance = 0; ///< linkage distance at which a and b merged
};

/// Full dendrogram for n points: n-1 merges; new cluster i gets id n+i.
struct dendrogram {
    std::size_t points = 0;
    std::vector<merge_step> merges;

    /// Cut the tree to k clusters; returns point -> cluster in [0, k)
    /// with cluster ids relabelled densely in order of first appearance.
    /// Throws std::invalid_argument if k == 0 or k > points.
    std::vector<int> cut(std::size_t k) const;
};

/// Build the dendrogram by agglomerative clustering of the rows of x.
/// O(n^2 log n) for single linkage, O(n^3)-ish otherwise (fine for the
/// few hundred anomalies per dataset this is applied to).
dendrogram agglomerate(const linalg::matrix& x, linkage link = linkage::single);

/// Convenience: agglomerate, cut at k, and package like kmeans() output
/// (centers are cluster means).
clustering hierarchical_cluster(const linalg::matrix& x, std::size_t k,
                                linkage link = linkage::single);

}  // namespace tfd::cluster
