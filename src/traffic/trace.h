// tfd::traffic — known-anomaly traces and the Section 6.3.1 injection
// methodology.
//
// The paper injects three documented attack traces into Abilene traffic:
//
//   Single-source DOS   3.47e5 pkts/s   (Los Nettos, Hussain et al. [11])
//   Multi-source DDOS   2.75e4 pkts/s   (Los Nettos, Hussain et al. [11])
//   Worm scan           141    pkts/s   (Utah ISP, Schechter et al. [32])
//
// Those traces are not redistributable, so we synthesize traces with the
// published intensities and structural signatures, then run the *same*
// pipeline the paper describes: mix with background -> identify the
// victim -> extract anomaly packets -> zero the low 11 address bits ->
// randomly remap features onto the target network -> thin 1-of-N ->
// inject into each OD flow in turn.
//
// Violent traces are materialized with a uniform per-packet weight
// (packets.size() * weight == true packet count) so that a 1e8-packet
// flood stays affordable; thinning and histogram accumulation honour the
// weight. Since attack packets are exchangeable, thinning the weighted
// materialization is statistically equivalent to thinning the raw
// stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/flow_record.h"
#include "net/topology.h"
#include "traffic/rng.h"

namespace tfd::traffic {

/// A packet-header trace with a uniform representation weight.
struct attack_trace {
    std::string name;
    std::vector<flow::packet> packets;  ///< materialized headers
    double weight = 1.0;                ///< true packets per materialized one
    double duration_seconds = 300.0;    ///< trace span

    /// True (pre-materialization) packet rate.
    double packets_per_second() const noexcept {
        return duration_seconds > 0
                   ? weight * static_cast<double>(packets.size()) /
                         duration_seconds
                   : 0.0;
    }
};

/// Synthesis knobs shared by the three trace factories.
struct trace_options {
    std::uint64_t seed = 7;
    double duration_seconds = 300.0;       ///< one 5-minute bin
    std::size_t max_materialized = 400000; ///< packet cap (weight absorbs rest)
};

/// Single-source bandwidth DOS: one attacker, one victim, spoofed source
/// ports, 40-byte packets at 3.47e5 pkts/s (Table 4 row 1).
attack_trace make_single_source_dos_trace(const trace_options& opts = {});

/// Multi-source DDOS: ~150 attackers, one victim, 2.75e4 pkts/s
/// (Table 4 row 2).
attack_trace make_multi_source_ddos_trace(const trace_options& opts = {});

/// Worm scan: a handful of infected hosts probing random destinations on
/// one vulnerable port at 141 pkts/s (Table 4 row 3).
attack_trace make_worm_scan_trace(const trace_options& opts = {});

/// Blend non-attack background packets into a trace (the Los Nettos
/// traces contain ambient ISP traffic). Background packets get weight 1
/// folded into the trace's uniform weight by replication if needed, so
/// the combined trace keeps a single weight; for simplicity background is
/// generated at the trace's weight granularity.
attack_trace mix_with_background(const attack_trace& trace,
                                 double background_pps, std::uint64_t seed);

/// The heavy-hitter destination address (the victim). Throws
/// std::invalid_argument on an empty trace.
net::ipv4 identify_victim(const attack_trace& trace);

/// Extract all packets directed at the victim (the paper's DOS
/// extraction step).
attack_trace extract_to_victim(const attack_trace& trace);

/// Extract packets by destination port (the worm trace was annotated; a
/// port filter reproduces that annotation).
attack_trace extract_by_port(const attack_trace& trace, std::uint16_t port);

/// Keep 1 of every `factor` packets (Table 5 thinning). factor <= 1
/// returns the input unchanged.
attack_trace thin_trace(const attack_trace& trace, std::uint64_t factor);

/// Split a trace into k sub-traces by unique source IP, balancing traffic
/// across groups (the multi-OD DDOS experiment: sources are mapped onto k
/// different origin PoPs). Throws std::invalid_argument if k < 1.
std::vector<attack_trace> split_by_sources(const attack_trace& trace, int k,
                                           std::uint64_t seed);

/// Map trace headers onto the target network and OD flow per the paper:
/// zero the low `anonymize_bits` of addresses, then apply a random but
/// consistent mapping of distinct addresses into the OD's origin/dest PoP
/// spaces (destinations to the dest PoP, sources to the origin PoP) and
/// of distinct ports onto ports. Returns flow records placed in `bin`
/// with packet counts scaled by the trace weight.
std::vector<flow::flow_record> map_into_od(
    const attack_trace& trace, const net::topology& topo, int od,
    std::size_t bin, std::uint64_t seed, int anonymize_bits = 11,
    std::uint64_t bin_us = 5ull * 60 * 1000 * 1000);

}  // namespace tfd::traffic
