#include "traffic/rng.h"

#include <cmath>

namespace tfd::traffic {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
}
}  // namespace

rng::rng(std::uint64_t seed) noexcept : seed_key_(seed) {
    std::uint64_t sm = seed;
    for (auto& s : s_) s = splitmix64(sm);
    // xoshiro must not start at the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t rng::next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double rng::uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
}

std::uint64_t rng::uniform_int(std::uint64_t n) noexcept {
    if (n == 0) return 0;
    // Rejection-free multiply-shift; bias is negligible for our n.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
}

double rng::normal() noexcept {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double rng::normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
}

double rng::exponential(double lambda) noexcept {
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return -std::log(u) / lambda;
}

std::uint64_t rng::poisson(double mean) noexcept {
    if (mean <= 0.0) return 0;
    if (mean > 64.0) {
        const double v = normal(mean, std::sqrt(mean));
        return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v + 0.5);
    }
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::uint64_t k = 0;
    while (prod > limit) {
        prod *= uniform();
        ++k;
    }
    return k;
}

std::uint64_t rng::geometric(double p) noexcept {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return 0;  // degenerate; callers validate
    double u = uniform();
    if (u < 1e-300) u = 1e-300;
    return static_cast<std::uint64_t>(std::log(u) / std::log(1.0 - p));
}

rng rng::derive(std::uint64_t a, std::uint64_t b, std::uint64_t c) const noexcept {
    // Mix the base seed with the indices through SplitMix64 rounds.
    std::uint64_t k = seed_key_;
    k ^= splitmix64(a) + 0x9E3779B97F4A7C15ULL;
    std::uint64_t t = k + (b << 1) + 0x632BE59BD9B4E019ULL;
    k ^= splitmix64(t);
    t = k + (c << 2) + 0x2545F4914F6CDD1DULL;
    k ^= splitmix64(t);
    return rng(k);
}

}  // namespace tfd::traffic
