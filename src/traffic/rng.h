// tfd::traffic — deterministic random number generation.
//
// All synthetic-trace randomness in the library flows through this RNG so
// every experiment is reproducible from a single printed seed. The
// generator is xoshiro256** seeded via SplitMix64; `derive` provides
// counter-based sub-streams so each (bin, OD flow) pair can regenerate
// its traffic independently — this is what gives the dataset random
// access without storing terabytes of records.
#pragma once

#include <cstdint>

namespace tfd::traffic {

/// SplitMix64 step (used for seeding and stream derivation).
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

/// xoshiro256** PRNG with convenience distributions.
class rng {
public:
    /// Seeded via SplitMix64 expansion of `seed`.
    explicit rng(std::uint64_t seed = 0x5DEECE66DULL) noexcept;

    /// Next raw 64-bit value.
    std::uint64_t next() noexcept;

    /// Uniform double in [0, 1).
    double uniform() noexcept;

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// Uniform integer in [0, n) (n == 0 returns 0).
    std::uint64_t uniform_int(std::uint64_t n) noexcept;

    /// Standard normal (Box-Muller, cached pair).
    double normal() noexcept;

    /// Normal with mean/stddev.
    double normal(double mean, double stddev) noexcept;

    /// Exponential with rate lambda (> 0).
    double exponential(double lambda) noexcept;

    /// Poisson-distributed count with the given mean (>= 0). Uses Knuth's
    /// method for small means and a normal approximation above 64.
    std::uint64_t poisson(double mean) noexcept;

    /// Geometric (number of failures before success), p in (0, 1].
    std::uint64_t geometric(double p) noexcept;

    /// Bernoulli trial.
    bool chance(double p) noexcept { return uniform() < p; }

    /// Derive an independent sub-stream keyed by up to three indices.
    /// Deterministic: same (seed, a, b, c) -> same stream.
    rng derive(std::uint64_t a, std::uint64_t b = 0,
               std::uint64_t c = 0) const noexcept;

private:
    std::uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
    std::uint64_t seed_key_;  // retained for derive()
};

}  // namespace tfd::traffic
