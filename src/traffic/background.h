// tfd::traffic — normal (background) traffic model.
//
// The subspace method rests on an empirical fact established in Lakhina
// et al., "Structural Analysis of Network Traffic Flows" (SIGMETRICS'04,
// the paper's reference [25]): the ensemble of OD-flow timeseries is
// effectively low-dimensional — a handful of shared "eigenflows"
// (diurnal/weekly periodicities and common noise) explain most variance.
// This generator reproduces that structure synthetically:
//
//   volume(od, t) = base(od) * max(eps, 1 + sum_k W[od,k] f_k(t)) * noise
//
// with smooth quasi-periodic latent factors f_k and non-negative mixing
// weights. Base rates follow a gravity model over PoP sizes. Per-record
// features are drawn from Zipfian host populations and a realistic
// service-port mix, so sample entropy has a stable per-OD baseline with
// the mild volume coupling the paper notes in Section 3.
//
// Generation is counter-based: generate(bin, od) derives an independent
// RNG stream from (seed, bin, od), so any cell can be (re)generated in
// isolation — the whole 3-week x 484-OD dataset never has to exist in
// memory at once.
#pragma once

#include <cstdint>
#include <vector>

#include "flow/flow_record.h"
#include "net/topology.h"
#include "traffic/rng.h"
#include "traffic/zipf.h"

namespace tfd::traffic {

/// Tuning knobs for the background model.
struct background_options {
    std::uint64_t seed = 1;             ///< master seed
    /// Number of shared eigenflows. Nonlinear couplings (activity
    /// clamps, Poisson sampling) add ~2 effective dimensions, so 8
    /// factors yield the ~10-dimensional normal space the paper found
    /// (m = 10 captured 85% of variance).
    int latent_factors = 8;
    double mean_records_per_bin = 90;   ///< average sampled records per OD bin
    double diurnal_strength = 0.35;     ///< amplitude of seasonal modulation
    double noise_level = 0.06;          ///< multiplicative per-bin noise
    std::size_t hosts_per_pop = 4096;   ///< host population behind each PoP
    double host_zipf_exponent = 1.1;    ///< popularity skew of hosts
    std::uint64_t bin_us = 5ull * 60 * 1000 * 1000;  ///< bin duration
    std::size_t bins_per_day = 288;     ///< 24h / 5min
};

/// Per-cell generation adjustments, used to model outages (volume dip,
/// heavy hitters vanish) without a separate code path.
struct generation_tweaks {
    double volume_scale = 1.0;        ///< multiply expected record count
    std::size_t host_rank_offset = 0; ///< skip the top-k popular hosts
};

/// Deterministic background-traffic generator for a whole network.
class background_model {
public:
    /// Builds latent factors and per-OD mixing weights from `opts.seed`.
    /// Throws std::invalid_argument on nonsensical options.
    background_model(const net::topology& topo, background_options opts = {});

    /// Expected records for (od) in a typical bin (before modulation).
    double base_records(int od) const;

    /// Deterministic seasonal volume multiplier (no noise) at (od, bin).
    double volume_multiplier(int od, std::size_t bin) const;

    /// Deterministic seasonal multiplier driving the active-host
    /// population (and hence sample entropy) at (od, bin); mixes the same
    /// latent factors as volume through independent weights.
    double entropy_multiplier(int od, std::size_t bin) const;

    /// Generate the sampled flow records for one (bin, od) cell.
    /// Deterministic in (seed, bin, od, tweaks).
    std::vector<flow::flow_record> generate(std::size_t bin, int od,
                                            const generation_tweaks& tweaks = {}) const;

    const net::topology& topo() const noexcept { return *topo_; }
    const background_options& options() const noexcept { return opts_; }

private:
    double latent_factor(int k, std::size_t bin) const;

    const net::topology* topo_;
    background_options opts_;
    std::vector<double> base_records_;       // per OD
    std::vector<double> weights_;            // od x latent_factors
    std::vector<double> entropy_weights_;    // od x latent_factors
    std::vector<double> factor_period_;      // per factor, in bins
    std::vector<double> factor_phase_;       // per factor
    std::vector<double> factor_scale_;       // per factor
    zipf_sampler host_popularity_;
    zipf_sampler service_ports_;
    std::vector<std::uint16_t> well_known_ports_;
};

}  // namespace tfd::traffic
