#include "traffic/trace.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

namespace tfd::traffic {

namespace {

using flow::packet;

// Materialize `true_count` packets under the cap; returns (count, weight).
std::pair<std::size_t, double> materialization(double true_count,
                                               std::size_t cap) {
    if (true_count <= static_cast<double>(cap))
        return {static_cast<std::size_t>(std::llround(true_count)), 1.0};
    return {cap, true_count / static_cast<double>(cap)};
}

std::uint64_t time_in(rng& g, double duration_seconds) {
    return static_cast<std::uint64_t>(g.uniform() * duration_seconds * 1e6);
}

}  // namespace

attack_trace make_single_source_dos_trace(const trace_options& opts) {
    attack_trace t;
    t.name = "single-source-dos";
    t.duration_seconds = opts.duration_seconds;
    rng g = rng(opts.seed).derive(0xD05, 1, 0);

    const double true_count = 3.47e5 * opts.duration_seconds;  // Table 4
    const auto [n, w] = materialization(true_count, opts.max_materialized);
    t.weight = w;
    t.packets.reserve(n);

    const net::ipv4 attacker{static_cast<std::uint32_t>(g.next())};
    const net::ipv4 victim{static_cast<std::uint32_t>(g.next())};
    for (std::size_t i = 0; i < n; ++i) {
        packet p;
        p.time_us = time_in(g, opts.duration_seconds);
        p.src = attacker;
        p.dst = victim;
        p.src_port = static_cast<std::uint16_t>(g.uniform_int(65536));  // spoofed
        p.dst_port = 80;
        p.protocol = 6;
        p.bytes = 40;
        t.packets.push_back(p);
    }
    std::sort(t.packets.begin(), t.packets.end(),
              [](const packet& a, const packet& b) { return a.time_us < b.time_us; });
    return t;
}

attack_trace make_multi_source_ddos_trace(const trace_options& opts) {
    attack_trace t;
    t.name = "multi-source-ddos";
    t.duration_seconds = opts.duration_seconds;
    rng g = rng(opts.seed).derive(0xD05, 2, 0);

    const double true_count = 2.75e4 * opts.duration_seconds;  // Table 4
    const auto [n, w] = materialization(true_count, opts.max_materialized);
    t.weight = w;
    t.packets.reserve(n);

    const std::size_t attackers = 150;
    std::vector<net::ipv4> srcs(attackers);
    for (auto& s : srcs) s = net::ipv4{static_cast<std::uint32_t>(g.next())};
    const net::ipv4 victim{static_cast<std::uint32_t>(g.next())};

    for (std::size_t i = 0; i < n; ++i) {
        packet p;
        p.time_us = time_in(g, opts.duration_seconds);
        p.src = srcs[g.uniform_int(attackers)];
        p.dst = victim;
        p.src_port = static_cast<std::uint16_t>(g.uniform_int(65536));
        p.dst_port = 6667;  // irc, a frequent DOS target port
        p.protocol = 6;
        p.bytes = 40;
        t.packets.push_back(p);
    }
    std::sort(t.packets.begin(), t.packets.end(),
              [](const packet& a, const packet& b) { return a.time_us < b.time_us; });
    return t;
}

attack_trace make_worm_scan_trace(const trace_options& opts) {
    attack_trace t;
    t.name = "worm-scan";
    t.duration_seconds = opts.duration_seconds;
    rng g = rng(opts.seed).derive(0xD05, 3, 0);

    const double true_count = 141.0 * opts.duration_seconds;  // Table 4
    const auto [n, w] = materialization(true_count, opts.max_materialized);
    t.weight = w;
    t.packets.reserve(n);

    const std::size_t infected = 4;
    std::vector<net::ipv4> srcs(infected);
    for (auto& s : srcs) s = net::ipv4{static_cast<std::uint32_t>(g.next())};

    for (std::size_t i = 0; i < n; ++i) {
        packet p;
        p.time_us = time_in(g, opts.duration_seconds);
        p.src = srcs[g.uniform_int(infected)];
        p.dst = net::ipv4{static_cast<std::uint32_t>(g.next())};  // random probe
        p.src_port = static_cast<std::uint16_t>(1024 + g.uniform_int(64512));
        p.dst_port = 1433;  // MS-SQL Snake worm target port
        p.protocol = 6;
        p.bytes = 44;
        t.packets.push_back(p);
    }
    std::sort(t.packets.begin(), t.packets.end(),
              [](const packet& a, const packet& b) { return a.time_us < b.time_us; });
    return t;
}

attack_trace mix_with_background(const attack_trace& trace,
                                 double background_pps, std::uint64_t seed) {
    attack_trace out = trace;
    rng g = rng(seed).derive(0xB6, 0, 0);
    // Background is materialized at the trace's weight so the combined
    // trace keeps one uniform weight.
    const double true_bg = background_pps * trace.duration_seconds;
    const auto n = static_cast<std::size_t>(true_bg / trace.weight);
    out.packets.reserve(out.packets.size() + n);
    for (std::size_t i = 0; i < n; ++i) {
        packet p;
        p.time_us = time_in(g, trace.duration_seconds);
        p.src = net::ipv4{static_cast<std::uint32_t>(g.next())};
        p.dst = net::ipv4{static_cast<std::uint32_t>(g.next())};
        p.src_port = static_cast<std::uint16_t>(1024 + g.uniform_int(64512));
        p.dst_port = g.chance(0.7) ? 80 : static_cast<std::uint16_t>(
                                              g.uniform_int(65536));
        p.protocol = 6;
        p.bytes = g.chance(0.5) ? 1500 : 576;
        out.packets.push_back(p);
    }
    std::sort(out.packets.begin(), out.packets.end(),
              [](const packet& a, const packet& b) { return a.time_us < b.time_us; });
    return out;
}

net::ipv4 identify_victim(const attack_trace& trace) {
    if (trace.packets.empty())
        throw std::invalid_argument("identify_victim: empty trace");
    std::unordered_map<std::uint32_t, std::uint64_t> counts;
    for (const packet& p : trace.packets) ++counts[p.dst.value];
    std::uint32_t best = 0;
    std::uint64_t best_count = 0;
    for (const auto& [addr, c] : counts)
        if (c > best_count || (c == best_count && addr < best)) {
            best = addr;
            best_count = c;
        }
    return net::ipv4{best};
}

attack_trace extract_to_victim(const attack_trace& trace) {
    const net::ipv4 victim = identify_victim(trace);
    attack_trace out;
    out.name = trace.name + "-extracted";
    out.weight = trace.weight;
    out.duration_seconds = trace.duration_seconds;
    for (const packet& p : trace.packets)
        if (p.dst == victim) out.packets.push_back(p);
    return out;
}

attack_trace extract_by_port(const attack_trace& trace, std::uint16_t port) {
    attack_trace out;
    out.name = trace.name + "-extracted";
    out.weight = trace.weight;
    out.duration_seconds = trace.duration_seconds;
    for (const packet& p : trace.packets)
        if (p.dst_port == port) out.packets.push_back(p);
    return out;
}

attack_trace thin_trace(const attack_trace& trace, std::uint64_t factor) {
    if (factor <= 1) return trace;
    attack_trace out;
    out.name = trace.name;
    out.weight = trace.weight;
    out.duration_seconds = trace.duration_seconds;
    out.packets.reserve(trace.packets.size() / factor + 1);
    for (std::size_t i = 0; i < trace.packets.size(); i += factor)
        out.packets.push_back(trace.packets[i]);
    return out;
}

std::vector<attack_trace> split_by_sources(const attack_trace& trace, int k,
                                           std::uint64_t seed) {
    if (k < 1) throw std::invalid_argument("split_by_sources: k must be >= 1");
    // Greedy balance: assign each distinct source to the lightest group.
    std::unordered_map<std::uint32_t, std::uint64_t> per_source;
    for (const packet& p : trace.packets) ++per_source[p.src.value];

    std::vector<std::pair<std::uint32_t, std::uint64_t>> sources(
        per_source.begin(), per_source.end());
    std::sort(sources.begin(), sources.end(),
              [](const auto& a, const auto& b) {
                  return a.second > b.second ||
                         (a.second == b.second && a.first < b.first);
              });
    (void)seed;

    std::unordered_map<std::uint32_t, int> group_of;
    std::vector<std::uint64_t> load(k, 0);
    for (const auto& [src, count] : sources) {
        const int g = static_cast<int>(
            std::min_element(load.begin(), load.end()) - load.begin());
        group_of[src] = g;
        load[g] += count;
    }

    std::vector<attack_trace> out(k);
    for (int g = 0; g < k; ++g) {
        out[g].name = trace.name + "-part" + std::to_string(g);
        out[g].weight = trace.weight;
        out[g].duration_seconds = trace.duration_seconds;
    }
    for (const packet& p : trace.packets)
        out[group_of[p.src.value]].packets.push_back(p);
    return out;
}

std::vector<flow::flow_record> map_into_od(const attack_trace& trace,
                                           const net::topology& topo, int od,
                                           std::size_t bin, std::uint64_t seed,
                                           int anonymize_bits,
                                           std::uint64_t bin_us) {
    if (od < 0 || od >= topo.od_count())
        throw std::invalid_argument("map_into_od: bad OD index");
    const auto [origin, dest] = topo.od_pair(od);
    rng g = rng(seed).derive(0x3A9, static_cast<std::uint64_t>(od), bin);

    // Consistent random remapping of (masked) addresses and ports.
    std::unordered_map<std::uint32_t, net::ipv4> src_map, dst_map;
    std::unordered_map<std::uint16_t, std::uint16_t> port_map;
    auto map_src = [&](net::ipv4 a) {
        const auto masked = net::mask_low_bits(a, anonymize_bits);
        auto [it, inserted] = src_map.try_emplace(masked.value);
        if (inserted)
            it->second =
                topo.address_in_pop(origin, static_cast<std::uint32_t>(g.next()));
        return it->second;
    };
    auto map_dst = [&](net::ipv4 a) {
        const auto masked = net::mask_low_bits(a, anonymize_bits);
        auto [it, inserted] = dst_map.try_emplace(masked.value);
        if (inserted)
            it->second =
                topo.address_in_pop(dest, static_cast<std::uint32_t>(g.next()));
        return it->second;
    };
    auto map_port = [&](std::uint16_t p) {
        auto [it, inserted] = port_map.try_emplace(p);
        if (inserted)
            it->second = static_cast<std::uint16_t>(g.uniform_int(65536));
        return it->second;
    };

    // Aggregate mapped packets into flow records, honouring the weight.
    const std::uint64_t bin_start = static_cast<std::uint64_t>(bin) * bin_us;
    std::unordered_map<flow::flow_key, flow::flow_record, flow::flow_key_hash>
        table;
    for (const packet& p : trace.packets) {
        flow::flow_key key{map_src(p.src), map_dst(p.dst), map_port(p.src_port),
                           map_port(p.dst_port), p.protocol};
        auto [it, inserted] = table.try_emplace(key);
        flow::flow_record& r = it->second;
        if (inserted) {
            r.key = key;
            r.ingress_pop = origin;
            r.first_us = bin_start + p.time_us % bin_us;
            r.last_us = r.first_us;
        }
        r.packets += 1;  // scaled by weight below
        r.bytes += p.bytes;
    }

    std::vector<flow::flow_record> out;
    out.reserve(table.size());
    for (auto& [key, rec] : table) {
        rec.packets = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::llround(static_cast<double>(rec.packets) * trace.weight)));
        rec.bytes = static_cast<std::uint64_t>(
            std::llround(static_cast<double>(rec.bytes) * trace.weight));
        out.push_back(rec);
    }
    std::sort(out.begin(), out.end(),
              [](const flow::flow_record& a, const flow::flow_record& b) {
                  return std::tie(a.first_us, a.key.src.value, a.key.dst.value,
                                  a.key.src_port, a.key.dst_port) <
                         std::tie(b.first_us, b.key.src.value, b.key.dst.value,
                                  b.key.src_port, b.key.dst_port);
              });
    return out;
}

}  // namespace tfd::traffic
