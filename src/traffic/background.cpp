#include "traffic/background.h"

#include <cmath>
#include <stdexcept>

namespace tfd::traffic {

namespace {
// Service-port mix observed in backbone traffic of the era: web dominates,
// then mail/DNS/p2p/chat. Drawn Zipf-weighted by rank below.
constexpr std::uint16_t k_well_known[] = {80,  443, 25,  53,   110, 139,
                                          21,  22,  119, 6881, 554, 1755,
                                          137, 445, 123, 6667, 8080, 3128};
}  // namespace

background_model::background_model(const net::topology& topo,
                                   background_options opts)
    : topo_(&topo),
      opts_(opts),
      host_popularity_(std::max<std::size_t>(1, opts.hosts_per_pop),
                       opts.host_zipf_exponent),
      service_ports_(std::size(k_well_known), 1.0),
      well_known_ports_(std::begin(k_well_known), std::end(k_well_known)) {
    if (opts.latent_factors < 1)
        throw std::invalid_argument("background_model: need >= 1 latent factor");
    if (opts.mean_records_per_bin <= 0)
        throw std::invalid_argument(
            "background_model: mean_records_per_bin must be > 0");
    if (opts.bins_per_day == 0)
        throw std::invalid_argument("background_model: bins_per_day must be > 0");

    rng setup = rng(opts.seed).derive(0xBACC, 0, 0);
    const int p = topo.pop_count();
    const int ods = topo.od_count();
    const int k = opts.latent_factors;

    // Gravity model: PoP "sizes" are lognormal; OD base rate ~ g_o * g_d.
    std::vector<double> g(p);
    double gsum = 0.0;
    for (double& v : g) {
        v = std::exp(setup.normal(0.0, 0.6));
        gsum += v;
    }
    base_records_.resize(ods);
    for (int o = 0; o < p; ++o)
        for (int d = 0; d < p; ++d) {
            const double frac = (g[o] / gsum) * (g[d] / gsum) * p * p;
            base_records_[topo.od_index(o, d)] =
                opts.mean_records_per_bin * frac;
        }

    // Latent eigenflows: the first is the shared diurnal cycle, the second
    // the weekly cycle, the rest quasi-periodic smooth factors with a
    // gently decaying amplitude. A dozen comparable factors give the OD
    // ensemble a genuinely ~10-dimensional normal subspace — the paper
    // found a knee at m ~= 10 capturing ~85% of variance.
    factor_period_.resize(k);
    factor_phase_.resize(k);
    factor_scale_.resize(k);
    const double day = static_cast<double>(opts.bins_per_day);
    for (int j = 0; j < k; ++j) {
        if (j == 0) {
            factor_period_[j] = day;
            factor_scale_[j] = 1.0;
        } else if (j == 1) {
            factor_period_[j] = day * 7.0;
            factor_scale_[j] = 0.6;
        } else {
            factor_period_[j] = setup.uniform(day / 8.0, day * 3.0);
            factor_scale_[j] = 0.55 / std::sqrt(static_cast<double>(j));
        }
        factor_phase_[j] = setup.uniform(0.0, 2.0 * M_PI);
    }

    // Non-negative mixing weights; every OD loads mostly on the diurnal
    // factor plus a random blend of the others — this is what makes the
    // ensemble low-rank. Entropy gets an independent mixing matrix over
    // the same factors so the entropy tensor is itself multi-rank rather
    // than a rank-1 shadow of volume.
    weights_.resize(static_cast<std::size_t>(ods) * k);
    entropy_weights_.resize(static_cast<std::size_t>(ods) * k);
    for (int od = 0; od < ods; ++od) {
        for (int j = 0; j < k; ++j) {
            const double w = std::fabs(setup.normal(0.0, 1.0));
            weights_[static_cast<std::size_t>(od) * k + j] =
                opts.diurnal_strength * factor_scale_[j] * w;
            const double we = std::fabs(setup.normal(0.0, 1.0));
            entropy_weights_[static_cast<std::size_t>(od) * k + j] =
                opts.diurnal_strength * factor_scale_[j] * we;
        }
    }
}

double background_model::entropy_multiplier(int od, std::size_t bin) const {
    if (od < 0 || od >= topo_->od_count())
        throw std::out_of_range("background_model: OD index out of range");
    const int k = opts_.latent_factors;
    double m = 1.0;
    for (int j = 0; j < k; ++j)
        m += entropy_weights_[static_cast<std::size_t>(od) * k + j] *
             latent_factor(j, bin);
    return std::max(0.05, m);
}

double background_model::base_records(int od) const {
    if (od < 0 || od >= topo_->od_count())
        throw std::out_of_range("background_model: OD index out of range");
    return base_records_[od];
}

double background_model::latent_factor(int k, std::size_t bin) const {
    const double t = static_cast<double>(bin);
    return std::sin(2.0 * M_PI * t / factor_period_[k] + factor_phase_[k]);
}

double background_model::volume_multiplier(int od, std::size_t bin) const {
    if (od < 0 || od >= topo_->od_count())
        throw std::out_of_range("background_model: OD index out of range");
    const int k = opts_.latent_factors;
    double m = 1.0;
    for (int j = 0; j < k; ++j)
        m += weights_[static_cast<std::size_t>(od) * k + j] *
             latent_factor(j, bin);
    return std::max(0.05, m);
}

std::vector<flow::flow_record> background_model::generate(
    std::size_t bin, int od, const generation_tweaks& tweaks) const {
    const double expected = base_records(od) * volume_multiplier(od, bin) *
                            std::max(0.0, tweaks.volume_scale);

    rng gen = rng(opts_.seed).derive(0xF10F, bin, static_cast<std::uint64_t>(od));
    // Multiplicative lognormal-ish noise plus Poisson count noise.
    const double noisy =
        expected * std::exp(gen.normal(0.0, opts_.noise_level));
    const std::uint64_t n = gen.poisson(noisy);

    const auto [origin, dest] = topo_->od_pair(od);
    const std::uint64_t bin_start = static_cast<std::uint64_t>(bin) * opts_.bin_us;

    // The active-host population breathes with the shared diurnal cycle:
    // fewer users at night means fewer distinct feature values, so sample
    // entropy inherits the network-wide temporal structure that makes the
    // OD ensemble low-rank (ref. [25]) — exactly what the normal subspace
    // captures. Implemented by compressing Zipf ranks by the activity
    // factor (merging adjacent ranks keeps the popularity shape).
    const double activity =
        std::min(1.0, 0.35 + 0.5 * entropy_multiplier(od, bin));

    std::vector<flow::flow_record> out;
    out.reserve(n);
    // During outages the heavy hitters vanish and only tail traffic
    // remains, so the per-packet feature distribution *disperses* (the
    // effect behind the paper's outage clusters): reject head ranks.
    auto draw_rank = [&](rng& g) {
        std::size_t rank = host_popularity_.sample(g);
        for (int guard = 0;
             rank < tweaks.host_rank_offset && guard < 64; ++guard)
            rank = host_popularity_.sample(g);
        return rank;
    };

    for (std::uint64_t i = 0; i < n; ++i) {
        const auto src_rank =
            static_cast<std::size_t>(draw_rank(gen) * activity);
        const auto dst_rank =
            static_cast<std::size_t>(draw_rank(gen) * activity);
        // Hash ranks so "popular" hosts are scattered across the PoP space.
        const auto src_bits =
            static_cast<std::uint32_t>(src_rank * 2654435761u + 17u);
        const auto dst_bits =
            static_cast<std::uint32_t>(dst_rank * 2654435761u + 40503u);

        flow::flow_record r;
        r.key.src = topo_->address_in_pop(origin, src_bits);
        r.key.dst = topo_->address_in_pop(dest, dst_bits);
        r.key.protocol = gen.chance(0.9) ? 6 : 17;

        // Client->server port pattern with occasional reverse direction.
        const std::uint16_t service =
            well_known_ports_[service_ports_.sample(gen)];
        const auto ephemeral =
            static_cast<std::uint16_t>(1024 + gen.uniform_int(64512));
        if (gen.chance(0.8)) {
            r.key.src_port = ephemeral;
            r.key.dst_port = service;
        } else if (gen.chance(0.5)) {
            r.key.src_port = service;
            r.key.dst_port = ephemeral;
        } else {  // peer-to-peer style: both ephemeral
            r.key.src_port = ephemeral;
            r.key.dst_port =
                static_cast<std::uint16_t>(1024 + gen.uniform_int(64512));
        }

        r.packets = 1 + gen.geometric(0.45);
        std::uint64_t bytes = 0;
        for (std::uint64_t pkt = 0; pkt < r.packets; ++pkt)
            bytes += gen.chance(0.55) ? 1500 : (gen.chance(0.5) ? 576 : 40);
        r.bytes = bytes;
        r.first_us = bin_start + gen.uniform_int(opts_.bin_us);
        r.last_us = r.first_us;
        r.ingress_pop = origin;
        out.push_back(r);
    }
    return out;
}

}  // namespace tfd::traffic
