// tfd::traffic — Zipf-distributed sampling.
//
// Feature values in backbone traffic (hosts, services) are heavy-tailed:
// a few values account for most packets while a long tail appears rarely.
// The rank-frequency histograms of Figure 1 have exactly this shape. We
// model feature populations as Zipf(s) over N ranks.
#pragma once

#include <cstddef>
#include <vector>

#include "traffic/rng.h"

namespace tfd::traffic {

/// Sampler for Zipf-distributed ranks: P(rank = k) ∝ 1/(k+1)^s for
/// k in [0, n). Precomputes the CDF; sampling is a binary search.
class zipf_sampler {
public:
    /// n >= 1 ranks, exponent s >= 0 (s == 0 is uniform).
    /// Throws std::invalid_argument if n == 0 or s < 0.
    zipf_sampler(std::size_t n, double s);

    /// Sample a rank in [0, n).
    std::size_t sample(rng& gen) const noexcept;

    /// Probability mass of a rank; throws std::out_of_range.
    double pmf(std::size_t rank) const;

    std::size_t size() const noexcept { return cdf_.size(); }
    double exponent() const noexcept { return s_; }

    /// Exact entropy (bits) of the distribution — handy as the expected
    /// value that sample entropy estimates at large sample sizes.
    double entropy_bits() const noexcept;

private:
    double s_;
    std::vector<double> cdf_;
};

}  // namespace tfd::traffic
