#include "traffic/zipf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tfd::traffic {

zipf_sampler::zipf_sampler(std::size_t n, double s) : s_(s) {
    if (n == 0) throw std::invalid_argument("zipf_sampler: n must be >= 1");
    if (s < 0.0) throw std::invalid_argument("zipf_sampler: s must be >= 0");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += std::pow(static_cast<double>(k + 1), -s);
        cdf_[k] = acc;
    }
    const double inv = 1.0 / acc;
    for (double& v : cdf_) v *= inv;
    cdf_.back() = 1.0;  // guard against round-off
}

std::size_t zipf_sampler::sample(rng& gen) const noexcept {
    const double u = gen.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(it - cdf_.begin());
}

double zipf_sampler::pmf(std::size_t rank) const {
    if (rank >= cdf_.size())
        throw std::out_of_range("zipf_sampler::pmf: rank out of range");
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double zipf_sampler::entropy_bits() const noexcept {
    double h = 0.0;
    double prev = 0.0;
    for (double c : cdf_) {
        const double p = c - prev;
        prev = c;
        if (p > 0.0) h -= p * std::log2(p);
    }
    return h;
}

}  // namespace tfd::traffic
