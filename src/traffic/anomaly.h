// tfd::traffic — anomaly taxonomy and record-level generators.
//
// One generator per anomaly class of Table 1. Each generator produces the
// flow records an operator would see for that anomaly inside a single
// (5-minute bin, OD flow) cell, with the distributional signature the
// paper describes: e.g. a port scan concentrates dstIP while dispersing
// dstPort; a network scan disperses dstIP and srcPort while concentrating
// dstPort.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "flow/flow_record.h"
#include "net/topology.h"
#include "traffic/rng.h"

namespace tfd::traffic {

/// Anomaly classes of Table 1 (plus `none` for background-only cells).
enum class anomaly_type : int {
    none = 0,
    alpha,             ///< unusually large point-to-point flow
    dos,               ///< single-source denial of service
    ddos,              ///< distributed denial of service
    flash_crowd,       ///< burst to one destination from typical sources
    port_scan,         ///< probes to many ports on few destinations
    network_scan,      ///< probes to many destinations on few ports
    worm,              ///< worm scanning (special case of network scan)
    outage,            ///< traffic shift/dip from equipment failure
    point_multipoint,  ///< single source to many destinations
};

/// Number of distinct anomaly types (excluding `none`).
inline constexpr int anomaly_type_count = 9;

/// Human-readable label matching the paper's Table 1 names.
const char* anomaly_name(anomaly_type t) noexcept;

/// Parse a label produced by anomaly_name; throws std::invalid_argument.
anomaly_type parse_anomaly(const std::string& name);

/// A ground-truth anomaly planted in a scenario.
struct planted_anomaly {
    anomaly_type type = anomaly_type::none;
    std::size_t start_bin = 0;     ///< first affected timebin
    std::size_t duration_bins = 1; ///< number of affected bins
    std::vector<int> od_flows;     ///< OD flows carrying the anomaly
    double packets_per_second = 0; ///< post-sampling anomaly intensity
    std::uint64_t id = 0;          ///< stable identifier within a scenario

    bool active_in(std::size_t bin) const noexcept {
        return bin >= start_bin && bin < start_bin + duration_bins;
    }
};

/// Parameters for a single-cell anomaly generation.
struct anomaly_cell {
    anomaly_type type = anomaly_type::none;
    int od = 0;                     ///< OD flow (origin PoP defines ingress)
    std::size_t bin = 0;            ///< timebin index
    double packets = 0;             ///< anomaly packets in this bin (sampled)
    std::uint64_t bin_us = 5ull * 60 * 1000 * 1000;  ///< bin duration
};

/// Generate the flow records for one anomaly cell.
///
/// Record counts are capped (distinct-key cardinality preserved up to the
/// cap; per-record packet counts absorb the remainder) so that even
/// violent anomalies stay cheap to materialize. `outage` yields no
/// records — it suppresses background instead (see background_model
/// generation tweaks).
///
/// Throws std::invalid_argument for `none` or out-of-range OD.
std::vector<flow::flow_record> generate_anomaly_records(
    const net::topology& topo, const anomaly_cell& cell, rng gen);

/// Weights giving the relative frequency of each type in a random
/// scenario; shaped after the Abilene manual-inspection breakdown in
/// Table 3 (alpha flows dominate; scans common; flash crowds and
/// point-to-multipoint rare).
double default_type_weight(anomaly_type t) noexcept;

/// Default per-type sampled intensity range (packets/sec) used when
/// planting anomalies; low-volume types (scans) sit well below volume
/// detectability, high-volume types (alpha, DOS) above it.
std::pair<double, double> default_intensity_range(anomaly_type t) noexcept;

}  // namespace tfd::traffic
