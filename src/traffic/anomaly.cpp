#include "traffic/anomaly.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

namespace tfd::traffic {

namespace {

using flow::flow_record;

// Upper bound on materialized records per anomaly cell. Distinct-key
// cardinality above the cap is folded into per-record packet counts, so
// histograms keep the right mass at slightly reduced support.
constexpr std::size_t k_record_cap = 4000;

struct cell_builder {
    const net::topology& topo;
    const anomaly_cell& cell;
    rng& gen;
    int origin;
    int dest;
    std::uint64_t bin_start_us;
    std::vector<flow_record> out;

    cell_builder(const net::topology& t, const anomaly_cell& c, rng& g)
        : topo(t), cell(c), gen(g) {
        const auto [o, d] = t.od_pair(c.od);
        origin = o;
        dest = d;
        bin_start_us = static_cast<std::uint64_t>(c.bin) * c.bin_us;
    }

    net::ipv4 origin_host(std::uint32_t bits) const {
        return topo.address_in_pop(origin, bits);
    }
    net::ipv4 dest_host(std::uint32_t bits) const {
        return topo.address_in_pop(dest, bits);
    }

    void emit(net::ipv4 src, net::ipv4 dst, std::uint16_t sport,
              std::uint16_t dport, std::uint64_t packets,
              std::uint32_t bytes_per_packet, std::uint8_t proto = 6) {
        if (packets == 0) return;
        flow_record r;
        r.key = {src, dst, sport, dport, proto};
        r.packets = packets;
        r.bytes = packets * bytes_per_packet;
        r.first_us = bin_start_us + gen.uniform_int(cell.bin_us);
        r.last_us = r.first_us;
        r.ingress_pop = origin;
        out.push_back(r);
    }
};

// Split `total` packets across `records` records (each gets >= 1).
std::uint64_t per_record(double total, std::size_t records) {
    if (records == 0) return 0;
    return std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(total / records)));
}

std::uint16_t ephemeral_port(rng& g) {
    return static_cast<std::uint16_t>(1024 + g.uniform_int(64512));
}

void gen_alpha(cell_builder& b, double total) {
    // Unusually large point-to-point flow (e.g. the SLAC iperf bandwidth
    // tests): one src, one dst, one port pair, enormous packet count.
    const net::ipv4 src = b.origin_host(static_cast<std::uint32_t>(b.gen.next()));
    const net::ipv4 dst = b.dest_host(static_cast<std::uint32_t>(b.gen.next()));
    const std::uint16_t sport = ephemeral_port(b.gen);
    const std::uint16_t dport = 5001;  // iperf
    const std::size_t records = 1 + b.gen.uniform_int(3);
    const std::uint64_t pkts = per_record(total, records);
    for (std::size_t i = 0; i < records; ++i)
        b.emit(src, dst, sport, dport, pkts, 1500);
}

void gen_dos(cell_builder& b, double total) {
    // Single-source flood on one victim: spoofed source ports disperse
    // srcPort; srcIP/dstIP/dstPort concentrate.
    const net::ipv4 src = b.origin_host(static_cast<std::uint32_t>(b.gen.next()));
    const net::ipv4 dst = b.dest_host(static_cast<std::uint32_t>(b.gen.next()));
    const std::uint16_t dport =
        std::array<std::uint16_t, 3>{80, 6667, 443}[b.gen.uniform_int(3)];
    const std::size_t records =
        std::min<std::size_t>(k_record_cap,
                              std::max<std::size_t>(1, static_cast<std::size_t>(total)));
    const std::uint64_t pkts = per_record(total, records);
    for (std::size_t i = 0; i < records; ++i)
        b.emit(src, dst, ephemeral_port(b.gen), dport, pkts, 40);
}

void gen_ddos(cell_builder& b, double total) {
    // Distributed flood: many (spoofed) sources, one victim.
    const net::ipv4 dst = b.dest_host(static_cast<std::uint32_t>(b.gen.next()));
    const std::uint16_t dport =
        std::array<std::uint16_t, 3>{80, 6667, 443}[b.gen.uniform_int(3)];
    const std::size_t sources = 100 + b.gen.uniform_int(300);
    std::vector<net::ipv4> srcs(sources);
    for (auto& s : srcs)
        s = b.origin_host(static_cast<std::uint32_t>(b.gen.next()));
    const std::size_t records = std::min<std::size_t>(
        k_record_cap,
        std::max<std::size_t>(sources, static_cast<std::size_t>(total / 8)));
    const std::uint64_t pkts = per_record(total, records);
    for (std::size_t i = 0; i < records; ++i)
        b.emit(srcs[i % sources], dst, ephemeral_port(b.gen), dport, pkts, 40);
}

void gen_flash_crowd(cell_builder& b, double total) {
    // Burst to one destination/service from a *typical* (non-spoofed)
    // source population: dispersed srcPort, concentrated dstIP/dstPort.
    const net::ipv4 dst = b.dest_host(static_cast<std::uint32_t>(b.gen.next()));
    const std::uint16_t dport = 80;
    const std::size_t clients = std::min<std::size_t>(
        k_record_cap, std::max<std::size_t>(20, static_cast<std::size_t>(total / 6)));
    const std::uint64_t pkts = per_record(total, clients);
    for (std::size_t i = 0; i < clients; ++i) {
        // Zipf-ish popularity: low host indices more common (typical users).
        const auto rank = static_cast<std::uint32_t>(
            std::pow(b.gen.uniform(), 2.0) * 4096);
        b.emit(b.origin_host(rank * 2654435761u), dst, ephemeral_port(b.gen),
               dport, pkts, 700);
    }
}

void gen_port_scan(cell_builder& b, double total) {
    // Probes to many ports on one destination. Two styles seen in the
    // paper's Abilene clusters 3 and 4: (a) scanner varies its source
    // port per probe; (b) scanner keeps one source port.
    const net::ipv4 src = b.origin_host(static_cast<std::uint32_t>(b.gen.next()));
    const net::ipv4 dst = b.dest_host(static_cast<std::uint32_t>(b.gen.next()));
    const bool vary_sport = b.gen.chance(0.5);
    const std::uint16_t fixed_sport = ephemeral_port(b.gen);
    const std::size_t ports = std::min<std::size_t>(
        std::max<std::size_t>(50, static_cast<std::size_t>(total)), 2000);
    const std::uint16_t start =
        static_cast<std::uint16_t>(1 + b.gen.uniform_int(30000));
    const std::uint64_t pkts = per_record(total, ports);
    for (std::size_t i = 0; i < ports; ++i) {
        const auto dport = static_cast<std::uint16_t>(start + i);
        b.emit(src, dst, vary_sport ? ephemeral_port(b.gen) : fixed_sport,
               dport, pkts, 44);
    }
}

void gen_network_scan(cell_builder& b, double total) {
    // Probes to many destination addresses on one vulnerable port;
    // scanners often increment the source port per probe (Section 7.3.2),
    // dispersing srcPort.
    const net::ipv4 src = b.origin_host(static_cast<std::uint32_t>(b.gen.next()));
    const std::uint16_t dport =
        std::array<std::uint16_t, 3>{1433, 445, 135}[b.gen.uniform_int(3)];
    const std::size_t targets = std::min<std::size_t>(
        std::max<std::size_t>(50, static_cast<std::size_t>(total)), 3000);
    const std::uint32_t base = static_cast<std::uint32_t>(b.gen.next());
    std::uint16_t sport = ephemeral_port(b.gen);
    const std::uint64_t pkts = per_record(total, targets);
    for (std::size_t i = 0; i < targets; ++i) {
        // Sequentially increasing host bits: the classic scan footprint.
        b.emit(src, b.dest_host(base + static_cast<std::uint32_t>(i)), sport++,
               dport, pkts, 44);
    }
}

void gen_worm(cell_builder& b, double total) {
    // Worm scanning for vulnerable hosts: a few infected sources probing
    // pseudo-random destinations on one port.
    const std::size_t infected = 1 + b.gen.uniform_int(4);
    std::vector<net::ipv4> srcs(infected);
    for (auto& s : srcs)
        s = b.origin_host(static_cast<std::uint32_t>(b.gen.next()));
    const std::uint16_t dport =
        std::array<std::uint16_t, 3>{1433, 445, 135}[b.gen.uniform_int(3)];
    const std::size_t probes = std::min<std::size_t>(
        std::max<std::size_t>(50, static_cast<std::size_t>(total)), 3000);
    const std::uint64_t pkts = per_record(total, probes);
    for (std::size_t i = 0; i < probes; ++i)
        b.emit(srcs[i % infected],
               b.dest_host(static_cast<std::uint32_t>(b.gen.next())),
               ephemeral_port(b.gen), dport, pkts, 44);
}

void gen_point_multipoint(cell_builder& b, double total) {
    // Content distribution / P2P seeding: one source on few ports sending
    // to many destinations on a wide range of destination ports.
    const net::ipv4 src = b.origin_host(static_cast<std::uint32_t>(b.gen.next()));
    const std::uint16_t sport = ephemeral_port(b.gen);
    const std::size_t peers = std::min<std::size_t>(
        std::max<std::size_t>(30, static_cast<std::size_t>(total / 2)), 2000);
    const std::uint64_t pkts = per_record(total, peers);
    for (std::size_t i = 0; i < peers; ++i)
        b.emit(src, b.dest_host(static_cast<std::uint32_t>(b.gen.next())),
               sport, ephemeral_port(b.gen), pkts, 1200);
}

}  // namespace

const char* anomaly_name(anomaly_type t) noexcept {
    switch (t) {
        case anomaly_type::none: return "None";
        case anomaly_type::alpha: return "Alpha";
        case anomaly_type::dos: return "DOS";
        case anomaly_type::ddos: return "DDOS";
        case anomaly_type::flash_crowd: return "Flash Crowd";
        case anomaly_type::port_scan: return "Port Scan";
        case anomaly_type::network_scan: return "Network Scan";
        case anomaly_type::worm: return "Worm";
        case anomaly_type::outage: return "Outage";
        case anomaly_type::point_multipoint: return "Point-Multipoint";
    }
    return "?";
}

anomaly_type parse_anomaly(const std::string& name) {
    for (int i = 0; i <= anomaly_type_count; ++i) {
        const auto t = static_cast<anomaly_type>(i);
        if (name == anomaly_name(t)) return t;
    }
    throw std::invalid_argument("parse_anomaly: unknown label '" + name + "'");
}

std::vector<flow::flow_record> generate_anomaly_records(
    const net::topology& topo, const anomaly_cell& cell, rng gen) {
    if (cell.type == anomaly_type::none)
        throw std::invalid_argument("generate_anomaly_records: type is none");
    if (cell.od < 0 || cell.od >= topo.od_count())
        throw std::invalid_argument("generate_anomaly_records: bad OD index");

    cell_builder b(topo, cell, gen);
    const double total =
        cell.packets > 0
            ? cell.packets
            : 0.0;
    if (total <= 0.0 && cell.type != anomaly_type::outage) return {};

    switch (cell.type) {
        case anomaly_type::alpha: gen_alpha(b, total); break;
        case anomaly_type::dos: gen_dos(b, total); break;
        case anomaly_type::ddos: gen_ddos(b, total); break;
        case anomaly_type::flash_crowd: gen_flash_crowd(b, total); break;
        case anomaly_type::port_scan: gen_port_scan(b, total); break;
        case anomaly_type::network_scan: gen_network_scan(b, total); break;
        case anomaly_type::worm: gen_worm(b, total); break;
        case anomaly_type::point_multipoint: gen_point_multipoint(b, total); break;
        case anomaly_type::outage: break;  // suppresses background instead
        case anomaly_type::none: break;    // unreachable
    }
    return std::move(b.out);
}

double default_type_weight(anomaly_type t) noexcept {
    // Shaped after the Table 3 frequency breakdown.
    switch (t) {
        case anomaly_type::alpha: return 0.40;
        case anomaly_type::dos: return 0.06;
        case anomaly_type::ddos: return 0.04;
        case anomaly_type::flash_crowd: return 0.04;
        case anomaly_type::port_scan: return 0.13;
        case anomaly_type::network_scan: return 0.12;
        case anomaly_type::worm: return 0.06;
        case anomaly_type::outage: return 0.07;
        case anomaly_type::point_multipoint: return 0.08;
        case anomaly_type::none: return 0.0;
    }
    return 0.0;
}

std::pair<double, double> default_intensity_range(anomaly_type t) noexcept {
    // Sampled packets/second, calibrated to the simulated cell scale
    // (~0.7 pkts/s per OD): low-volume anomalies (scans, p2mp) sit below
    // the volume-detection floor; alpha/DOS events sit well above it but
    // not so far above that a handful of planted events dominates the
    // ensemble covariance (which would displace normal structure out of
    // the top-10 subspace — see DESIGN.md on scale compression).
    switch (t) {
        case anomaly_type::alpha: return {8.0, 50.0};
        case anomaly_type::dos: return {6.0, 40.0};
        case anomaly_type::ddos: return {5.0, 30.0};
        case anomaly_type::flash_crowd: return {5.0, 25.0};
        case anomaly_type::port_scan: return {0.4, 2.0};
        case anomaly_type::network_scan: return {0.4, 2.0};
        case anomaly_type::worm: return {0.5, 3.0};
        case anomaly_type::outage: return {0.0, 0.0};
        case anomaly_type::point_multipoint: return {0.8, 6.0};
        case anomaly_type::none: return {0.0, 0.0};
    }
    return {0.0, 0.0};
}

}  // namespace tfd::traffic
