#include "traffic/scenario.h"

#include <algorithm>
#include <stdexcept>

namespace tfd::traffic {

scenario::scenario(std::vector<planted_anomaly> anomalies)
    : anomalies_(std::move(anomalies)) {
    for (std::size_t i = 0; i < anomalies_.size(); ++i) anomalies_[i].id = i;
}

void scenario::add(planted_anomaly a) {
    a.id = anomalies_.size();
    anomalies_.push_back(std::move(a));
}

std::vector<const planted_anomaly*> scenario::find(std::size_t bin,
                                                   int od) const {
    std::vector<const planted_anomaly*> out;
    for (const auto& a : anomalies_) {
        if (!a.active_in(bin)) continue;
        if (std::find(a.od_flows.begin(), a.od_flows.end(), od) !=
            a.od_flows.end())
            out.push_back(&a);
    }
    return out;
}

std::vector<const planted_anomaly*> scenario::at_bin(std::size_t bin) const {
    std::vector<const planted_anomaly*> out;
    for (const auto& a : anomalies_)
        if (a.active_in(bin)) out.push_back(&a);
    return out;
}

bool scenario::bin_is_anomalous(std::size_t bin) const {
    for (const auto& a : anomalies_)
        if (a.active_in(bin)) return true;
    return false;
}

const planted_anomaly* scenario::dominant_at_bin(std::size_t bin) const {
    const planted_anomaly* best = nullptr;
    for (const auto& a : anomalies_) {
        if (!a.active_in(bin)) continue;
        if (!best || a.packets_per_second > best->packets_per_second) best = &a;
    }
    return best;
}

scenario make_random_scenario(const net::topology& topo,
                              const scenario_options& opts) {
    if (opts.bins == 0)
        throw std::invalid_argument("make_random_scenario: bins must be > 0");

    rng gen = rng(opts.seed).derive(0x5CED, 0, 0);
    scenario out;

    // Cumulative type weights for sampling.
    std::vector<anomaly_type> types;
    std::vector<double> cum;
    double total_w = 0.0;
    for (int i = 1; i <= anomaly_type_count; ++i) {
        const auto t = static_cast<anomaly_type>(i);
        if (t == anomaly_type::outage && !opts.include_outages) continue;
        const double w = default_type_weight(t);
        if (w <= 0.0) continue;
        total_w += w;
        types.push_back(t);
        cum.push_back(total_w);
    }
    if (types.empty())
        throw std::invalid_argument("make_random_scenario: no anomaly types");

    const double per_bin =
        opts.anomalies_per_day / static_cast<double>(opts.bins_per_day);

    for (std::size_t bin = 0; bin < opts.bins; ++bin) {
        const std::uint64_t n = gen.poisson(per_bin);
        for (std::uint64_t i = 0; i < n; ++i) {
            const double u = gen.uniform() * total_w;
            const std::size_t ti = static_cast<std::size_t>(
                std::lower_bound(cum.begin(), cum.end(), u) - cum.begin());
            const anomaly_type t = types[std::min(ti, types.size() - 1)];

            planted_anomaly a;
            a.type = t;
            a.start_bin = bin;
            a.duration_bins = 1 + gen.uniform_int(2);

            const auto [lo, hi] = default_intensity_range(t);
            a.packets_per_second = gen.uniform(lo, hi);

            const int p = topo.pop_count();
            if (t == anomaly_type::outage) {
                // A PoP fails: every OD flow originating there dips.
                const int origin = static_cast<int>(gen.uniform_int(p));
                for (int d = 0; d < p; ++d)
                    a.od_flows.push_back(topo.od_index(origin, d));
                a.duration_bins = 1 + gen.uniform_int(3);
            } else if (t == anomaly_type::ddos &&
                       gen.chance(opts.multi_od_ddos_prob)) {
                // Distributed attack converging on one destination from
                // several origin PoPs.
                const int dest = static_cast<int>(gen.uniform_int(p));
                const int k =
                    2 + static_cast<int>(gen.uniform_int(std::max(1, p - 2)));
                std::vector<int> origins;
                for (int o = 0; o < p; ++o)
                    if (o != dest) origins.push_back(o);
                // Deterministic partial shuffle.
                for (std::size_t j = 0; j < origins.size(); ++j) {
                    const std::size_t swap_with =
                        j + gen.uniform_int(origins.size() - j);
                    std::swap(origins[j], origins[swap_with]);
                }
                for (int j = 0; j < k && j < static_cast<int>(origins.size());
                     ++j)
                    a.od_flows.push_back(topo.od_index(origins[j], dest));
            } else {
                const int origin = static_cast<int>(gen.uniform_int(p));
                int dest = static_cast<int>(gen.uniform_int(p));
                if (dest == origin) dest = (dest + 1) % p;
                a.od_flows.push_back(topo.od_index(origin, dest));
            }
            out.add(std::move(a));
        }
    }
    return out;
}

}  // namespace tfd::traffic
