// tfd::traffic — anomaly schedules (scenarios).
//
// A scenario is the ground truth of an experiment: the set of anomalies
// planted into background traffic, with their types, timebins, OD flows
// and intensities. Random scenarios draw types with Table 3-like
// frequencies and intensities from per-type ranges; the planted list
// doubles as the label set against which detection and classification
// results are scored.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/topology.h"
#include "traffic/anomaly.h"

namespace tfd::traffic {

/// Options for random scenario construction.
struct scenario_options {
    std::uint64_t seed = 42;
    std::size_t bins = 2016;          ///< duration (default one week)
    double anomalies_per_day = 10.0;  ///< expected planted anomalies per day
    std::size_t bins_per_day = 288;
    bool include_outages = true;      ///< plant PoP-wide outage events
    double multi_od_ddos_prob = 0.3;  ///< chance a DDOS spans several origins
};

/// Ground-truth schedule of planted anomalies.
class scenario {
public:
    scenario() = default;
    explicit scenario(std::vector<planted_anomaly> anomalies);

    const std::vector<planted_anomaly>& anomalies() const noexcept {
        return anomalies_;
    }

    /// All anomalies active at (bin, od).
    std::vector<const planted_anomaly*> find(std::size_t bin, int od) const;

    /// All anomalies active at a bin (any OD).
    std::vector<const planted_anomaly*> at_bin(std::size_t bin) const;

    /// True if any anomaly is active at the bin.
    bool bin_is_anomalous(std::size_t bin) const;

    /// The dominant (highest-intensity) anomaly at a bin, if any.
    const planted_anomaly* dominant_at_bin(std::size_t bin) const;

    std::size_t size() const noexcept { return anomalies_.size(); }

    /// Add one anomaly (assigns the next id).
    void add(planted_anomaly a);

private:
    std::vector<planted_anomaly> anomalies_;
};

/// Draw a random scenario over the given network.
///
/// Types are weighted per default_type_weight; intensities drawn from
/// default_intensity_range; DDOS events may span several origin PoPs
/// toward one destination; outages affect every OD flow originating at
/// the failed PoP for 1-3 bins.
scenario make_random_scenario(const net::topology& topo,
                              const scenario_options& opts);

}  // namespace tfd::traffic
