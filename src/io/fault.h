// tfd::io — deterministic, seed-driven fault injection.
//
// The detector is meant to run unattended on weeks of degraded feeds:
// corrupt exports, truncated spools, disks that return EIO once and
// then recover. Testing that the pipeline degrades gracefully requires
// injecting those faults on purpose — and injecting them *exactly the
// same way every run*, so a chaos test that fails once can be replayed
// under a debugger and pinned as a regression test forever.
//
// The design makes every fault decision a pure function of
// (plan.seed, fault site, index): whether byte #1234 of a spool gets a
// bit flipped, or write attempt #3 of a checkpoint fails, never depends
// on call order, thread timing, or how many other decisions were asked
// for in between. Two runs with the same plan therefore inject the
// identical fault set even if one of them crashes halfway through —
// the property the supervised-restart chaos tests rely on.
//
// Layers:
//
//   fault_plan      seed + per-site rates; a plain literal you can put
//                   in a test or pass through daemon flags
//   fault_injector  the vtable-free policy object: decision helpers per
//                   site (corrupt bytes, fail a write, truncate a read,
//                   stall) plus counters of what actually fired
//   fault_streambuf read-side std::streambuf wrapper that applies bit
//                   flips / truncation by absolute byte offset while an
//                   existing reader pulls from it — degraded feeds
//                   without touching the reader's code
//
// Everything here is test/ops machinery: with a default (all-zero)
// plan the injector reports enabled() == false and every helper is a
// cheap no-op, so production paths can hold an optional injector
// pointer and pay one branch.
#pragma once

#include <cstdint>
#include <span>
#include <streambuf>

namespace tfd::io {

/// Where a fault decision is being made. Folded into the hash so the
/// same index at two different sites draws independent decisions.
enum class fault_site : std::uint32_t {
    corrupt_byte = 1,    ///< bit flip in a byte buffer (index = byte offset)
    write_failure = 2,   ///< transient EIO/ENOSPC-style write failure
    read_truncate = 3,   ///< feed ends early (index = byte offset)
    short_read = 4,      ///< a read returns fewer bytes than asked
    write_stall = 5,     ///< a write blocks for plan.stall_us
};

/// A reproducible fault campaign: a seed plus per-site rates. Rates are
/// probabilities in [0, 1] evaluated per byte / per call; 0 disables a
/// site. The plan is semantically a value — copy it into a test next to
/// the assertions it produced.
struct fault_plan {
    std::uint64_t seed = 0;
    /// Per-byte probability that corrupt() flips one (hash-chosen) bit.
    double bit_flip_per_byte = 0.0;
    /// Per-call probability that should_fail_write() reports a
    /// transient failure (the caller maps it to EIO/ENOSPC semantics).
    double write_failure_per_call = 0.0;
    /// Per-byte probability that a fault_streambuf ends the stream
    /// early at that offset (spool truncated by a crash or full disk).
    double truncate_per_byte = 0.0;
    /// Per-call probability that a read is shortened (short read).
    double short_read_per_call = 0.0;
    /// Per-call probability of a write stall of stall_us microseconds.
    double write_stall_per_call = 0.0;
    std::uint64_t stall_us = 0;

    bool enabled() const noexcept {
        return bit_flip_per_byte > 0.0 || write_failure_per_call > 0.0 ||
               truncate_per_byte > 0.0 || short_read_per_call > 0.0 ||
               write_stall_per_call > 0.0;
    }
};

/// What actually fired (distinct counter per site).
struct fault_stats {
    std::uint64_t bits_flipped = 0;
    std::uint64_t writes_failed = 0;
    std::uint64_t reads_truncated = 0;
    std::uint64_t reads_shortened = 0;
    std::uint64_t stalls = 0;
};

/// The policy object. Thread-compatible (confine one injector to one
/// thread, or guard it externally); decisions themselves are stateless
/// hashes, only the counters mutate.
class fault_injector {
public:
    explicit fault_injector(fault_plan plan) noexcept : plan_(plan) {}

    const fault_plan& plan() const noexcept { return plan_; }
    const fault_stats& stats() const noexcept { return stats_; }
    bool enabled() const noexcept { return plan_.enabled(); }

    /// Would this (site, index) fire at `rate`? Pure — no counters.
    bool fires(fault_site site, std::uint64_t index, double rate) const noexcept;

    /// Flip bits in `bytes` per bit_flip_per_byte; byte i of the span is
    /// judged at absolute offset base_offset + i, so corrupting a buffer
    /// in chunks produces the same flips as corrupting it whole.
    /// Returns the number of bits flipped.
    std::uint64_t corrupt(std::span<std::uint8_t> bytes,
                          std::uint64_t base_offset = 0);

    /// Transient write failure for write attempt `attempt` (caller keeps
    /// the attempt counter so retries of the same save draw new
    /// decisions).
    bool should_fail_write(std::uint64_t attempt);

    /// Should the feed end at absolute byte `offset`?
    bool should_truncate_at(std::uint64_t offset);

    /// Shorten an n-byte read issued as call `call_index`? Returns the
    /// number of bytes to deliver (== n when the site does not fire; at
    /// least 1 when it does, so a reader always makes progress).
    std::size_t short_read_len(std::uint64_t call_index, std::size_t n);

    /// Sleep plan().stall_us if the stall site fires for `call_index`.
    void maybe_stall(std::uint64_t call_index);

private:
    fault_plan plan_;
    fault_stats stats_;
};

/// Read-side degraded-feed wrapper: pulls bytes from an inner streambuf
/// and applies the injector's bit flips and truncation by absolute
/// offset. Stacks under any istream consumer (the flow codec reader,
/// snapshot loads) without that consumer knowing faults exist:
///
///   std::istringstream clean(spool);
///   io::fault_injector faults({.seed = 7, .bit_flip_per_byte = 1e-5});
///   io::fault_streambuf degraded(*clean.rdbuf(), faults);
///   std::istream in(&degraded);
///   stream::flow_codec_reader reader(in, opts);
class fault_streambuf final : public std::streambuf {
public:
    fault_streambuf(std::streambuf& inner, fault_injector& faults)
        : inner_(&inner), faults_(&faults) {}

protected:
    int_type underflow() override;

private:
    std::streambuf* inner_;
    fault_injector* faults_;
    std::uint64_t offset_ = 0;      ///< absolute offset of buf_[0]
    std::uint64_t read_calls_ = 0;
    bool truncated_ = false;
    char buf_[4096];
};

}  // namespace tfd::io
