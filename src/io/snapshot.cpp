#include "io/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/fault.h"

namespace tfd::io {

namespace {

// magic + version + flags + fingerprint + section_count, then a u64
// FNV-1a of those 20 bytes so corruption inside the header (most
// importantly the fingerprint field) is attributed as corruption, not
// as a configuration mismatch.
constexpr std::size_t kHeaderFieldBytes = 4 + 2 + 2 + 8 + 4;
constexpr std::size_t kHeaderBytes = kHeaderFieldBytes + 8;

[[noreturn]] void reject(snapshot_errc code, const std::string& detail) {
    throw snapshot_error(code, detail);
}

}  // namespace

const char* to_string(snapshot_errc c) noexcept {
    switch (c) {
        case snapshot_errc::truncated: return "truncated";
        case snapshot_errc::bad_magic: return "bad magic";
        case snapshot_errc::unsupported_version: return "unsupported version";
        case snapshot_errc::checksum_mismatch: return "checksum mismatch";
        case snapshot_errc::fingerprint_mismatch:
            return "config fingerprint mismatch";
        case snapshot_errc::missing_section: return "missing section";
        case snapshot_errc::malformed: return "malformed";
        case snapshot_errc::io_failure: return "io failure";
    }
    return "unknown";
}

snapshot_error::snapshot_error(snapshot_errc code, const std::string& detail)
    : std::runtime_error(std::string("snapshot: ") + to_string(code) +
                         (detail.empty() ? "" : " (" + detail + ")")),
      code_(code) {}

void snapshot_writer::add_section(std::uint32_t tag, std::uint16_t version,
                                  std::span<const std::uint8_t> payload) {
    sections_.push_back(
        {tag, version, std::vector<std::uint8_t>(payload.begin(), payload.end())});
}

void snapshot_writer::add_section(std::uint32_t tag, std::uint16_t version,
                                  std::vector<std::uint8_t>&& payload) {
    sections_.push_back({tag, version, std::move(payload)});
}

std::vector<std::uint8_t> snapshot_writer::serialize() const {
    std::vector<std::uint8_t> out;
    std::size_t total = kHeaderBytes;
    for (const auto& s : sections_)
        total += section_header_bytes + s.payload.size();
    out.reserve(total);
    put_u32(out, snapshot_magic);
    put_u16(out, snapshot_format_version);
    put_u16(out, 0);  // flags
    put_u64(out, fingerprint_);
    put_u32(out, static_cast<std::uint32_t>(sections_.size()));
    put_u64(out, fnv1a64({out.data(), kHeaderFieldBytes}));
    for (const auto& s : sections_)
        write_section(out, s.tag, s.version, s.payload);
    return out;
}

void snapshot_writer::save_file(const std::string& path,
                                fault_injector* faults,
                                std::uint64_t attempt) const {
    const std::vector<std::uint8_t> bytes = serialize();
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) reject(snapshot_errc::io_failure, "cannot open " + tmp);
    const auto fail_tmp = [&](const std::string& what) {
        ::close(fd);
        std::remove(tmp.c_str());
        reject(snapshot_errc::io_failure, what);
    };
    // Injected transient failure: after the open (so the cleanup path
    // runs too), before any byte lands.
    if (faults && faults->should_fail_write(attempt))
        fail_tmp("injected transient write failure (attempt " +
                 std::to_string(attempt) + ") for " + tmp);
    std::size_t off = 0;
    while (off < bytes.size()) {
        const ssize_t n =
            ::write(fd, bytes.data() + off, bytes.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            fail_tmp("write to " + tmp + " failed");
        }
        off += static_cast<std::size_t>(n);
    }
    // The data blocks must be durable BEFORE the rename is: otherwise a
    // crash can persist the rename first and leave a truncated file
    // where the previous good snapshot used to be — exactly what
    // write-to-temp + rename exists to prevent.
    if (::fsync(fd) != 0) fail_tmp("fsync " + tmp + " failed");
    if (::close(fd) != 0) {
        std::remove(tmp.c_str());
        reject(snapshot_errc::io_failure, "close " + tmp + " failed");
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        reject(snapshot_errc::io_failure,
               "rename " + tmp + " -> " + path + ": " + ec.message());
    }
    // Make the rename itself durable (best-effort: a missed directory
    // sync can lose the newest snapshot, never corrupt one).
    const std::string dir =
        std::filesystem::path(path).parent_path().string();
    const int dfd = ::open(dir.empty() ? "." : dir.c_str(),
                           O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
        ::fsync(dfd);
        ::close(dfd);
    }
}

snapshot_reader::snapshot_reader(std::vector<std::uint8_t> bytes,
                                 std::uint64_t expected_fingerprint)
    : bytes_(std::move(bytes)) {
    if (bytes_.size() < kHeaderBytes)
        reject(snapshot_errc::truncated, "file shorter than header");
    wire_reader r(bytes_, "snapshot");
    if (r.u32() != snapshot_magic)
        reject(snapshot_errc::bad_magic, "not a snapshot file");
    const std::uint16_t version = r.u16();
    if (version != snapshot_format_version)
        reject(snapshot_errc::unsupported_version,
               "format version " + std::to_string(version) +
                   ", reader supports " +
                   std::to_string(snapshot_format_version));
    (void)r.u16();  // flags
    const std::uint64_t fingerprint = r.u64();
    const std::uint32_t count = r.u32();
    // Header checksum before the fingerprint comparison: a flipped bit
    // inside the fingerprint field must read as corruption, not as
    // "your configuration changed".
    if (r.u64() != fnv1a64({bytes_.data(), kHeaderFieldBytes}))
        reject(snapshot_errc::checksum_mismatch, "header");
    if (fingerprint != expected_fingerprint)
        reject(snapshot_errc::fingerprint_mismatch,
               "snapshot was taken under a different configuration");

    // Validate every section (bounds + checksum) before exposing any:
    // the all-or-nothing restore contract.
    sections_.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        try {
            sections_.push_back(read_section(r));
        } catch (const wire_checksum_error&) {
            reject(snapshot_errc::checksum_mismatch,
                   "section " + std::to_string(i));
        } catch (const wire_error&) {
            reject(snapshot_errc::truncated, "section " + std::to_string(i));
        }
    }
    if (!r.done())
        reject(snapshot_errc::malformed, "trailing bytes after last section");
}

snapshot_reader snapshot_reader::load_file(const std::string& path,
                                           std::uint64_t expected_fingerprint) {
    std::ifstream in(path, std::ios::binary);
    if (!in) reject(snapshot_errc::io_failure, "cannot open " + path);
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    if (ec) reject(snapshot_errc::io_failure, "cannot stat " + path);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    in.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (in.gcount() != static_cast<std::streamsize>(bytes.size()))
        reject(snapshot_errc::io_failure, "read failed: " + path);
    return snapshot_reader(std::move(bytes), expected_fingerprint);
}

bool snapshot_reader::has_section(std::uint32_t tag) const noexcept {
    for (const auto& s : sections_)
        if (s.tag == tag) return true;
    return false;
}

const section_view& snapshot_reader::find(std::uint32_t tag) const {
    for (const auto& s : sections_)
        if (s.tag == tag) return s;
    reject(snapshot_errc::missing_section, "tag " + std::to_string(tag));
}

std::uint16_t snapshot_reader::section_version(std::uint32_t tag) const {
    return find(tag).version;
}

wire_reader snapshot_reader::section(std::uint32_t tag) const {
    return wire_reader(find(tag).payload, "snapshot section");
}

}  // namespace tfd::io
