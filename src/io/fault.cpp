#include "io/fault.h"

#include <chrono>
#include <thread>

namespace tfd::io {

namespace {

// splitmix64 — the repo's standard cheap deterministic mixer (the
// eigensolver's inverse-iteration starts use the same recipe). Each
// decision hashes (seed, site, index) through it so decisions are
// independent across sites and indices but identical across runs.
std::uint64_t mix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::uint64_t decision_hash(std::uint64_t seed, fault_site site,
                            std::uint64_t index) noexcept {
    return mix64(mix64(seed ^ (static_cast<std::uint64_t>(site) *
                               0xD6E8FEB86659FD93ull)) ^
                 index);
}

// Top 53 bits -> uniform double in [0, 1).
double to_unit(std::uint64_t h) noexcept {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

bool fault_injector::fires(fault_site site, std::uint64_t index,
                           double rate) const noexcept {
    if (rate <= 0.0) return false;
    return to_unit(decision_hash(plan_.seed, site, index)) < rate;
}

std::uint64_t fault_injector::corrupt(std::span<std::uint8_t> bytes,
                                      std::uint64_t base_offset) {
    if (plan_.bit_flip_per_byte <= 0.0) return 0;
    std::uint64_t flipped = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        const std::uint64_t off = base_offset + i;
        const std::uint64_t h =
            decision_hash(plan_.seed, fault_site::corrupt_byte, off);
        if (to_unit(h) < plan_.bit_flip_per_byte) {
            // Which bit flips is drawn from the same hash, so a replay
            // reproduces the corruption bit for bit.
            bytes[i] ^= static_cast<std::uint8_t>(1u << (h & 7));
            ++flipped;
        }
    }
    stats_.bits_flipped += flipped;
    return flipped;
}

bool fault_injector::should_fail_write(std::uint64_t attempt) {
    if (!fires(fault_site::write_failure, attempt,
               plan_.write_failure_per_call))
        return false;
    ++stats_.writes_failed;
    return true;
}

bool fault_injector::should_truncate_at(std::uint64_t offset) {
    if (!fires(fault_site::read_truncate, offset, plan_.truncate_per_byte))
        return false;
    ++stats_.reads_truncated;
    return true;
}

std::size_t fault_injector::short_read_len(std::uint64_t call_index,
                                           std::size_t n) {
    if (n <= 1 ||
        !fires(fault_site::short_read, call_index, plan_.short_read_per_call))
        return n;
    ++stats_.reads_shortened;
    const std::uint64_t h =
        decision_hash(plan_.seed, fault_site::short_read, ~call_index);
    return 1 + static_cast<std::size_t>(h % (n - 1));
}

void fault_injector::maybe_stall(std::uint64_t call_index) {
    if (plan_.stall_us == 0 ||
        !fires(fault_site::write_stall, call_index,
               plan_.write_stall_per_call))
        return;
    ++stats_.stalls;
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.stall_us));
}

std::streambuf::int_type fault_streambuf::underflow() {
    if (gptr() < egptr())
        return traits_type::to_int_type(*gptr());
    if (truncated_) return traits_type::eof();
    offset_ += static_cast<std::uint64_t>(egptr() - eback());

    std::size_t want = sizeof(buf_);
    want = faults_->short_read_len(read_calls_++, want);
    const std::streamsize got =
        inner_->sgetn(buf_, static_cast<std::streamsize>(want));
    if (got <= 0) return traits_type::eof();

    std::size_t n = static_cast<std::size_t>(got);
    // Truncation: the stream ends at the first offset whose decision
    // fires; bytes past it are never delivered.
    for (std::size_t i = 0; i < n; ++i) {
        if (faults_->should_truncate_at(offset_ + i)) {
            truncated_ = true;
            n = i;
            break;
        }
    }
    if (n == 0) return traits_type::eof();
    faults_->corrupt(
        {reinterpret_cast<std::uint8_t*>(buf_), n}, offset_);
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(*gptr());
}

}  // namespace tfd::io
