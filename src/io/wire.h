// tfd::io — wire-format primitives shared by every serialized boundary.
//
// The flow codec (stream/flow_codec), the checkpoint container
// (io/snapshot) and the per-type snapshot hooks all speak the same
// little language: little-endian fixed-width integers, LEB128 varints
// with zigzag for signed values, bit-exact doubles (IEEE-754 bits moved
// through u64), and FNV-1a 64 checksums. This header is the single
// definition of that language — the primitives were extracted verbatim
// from flow_codec so the codec's on-disk format did not move by a bit
// (pinned by tests/stream/codec_golden_test.cpp).
//
// Layers:
//
//   put_* / fnv1a64 / zigzag   free functions appending to a byte vector
//                              (the codec's hot encode path uses these
//                              directly, no writer object in the loop)
//   wire_writer                an owned byte buffer with typed append
//   wire_reader                a bounds-checked cursor over a span;
//                              every read throws wire_error on underrun
//   write_section/read_section checksummed + versioned section framing
//                              (u32 tag | u16 version | u16 reserved |
//                               u64 payload_bytes | u64 fnv1a64 | payload)
//
// wire_reader never copies: bytes() hands back subspans of the input, so
// a snapshot can be validated and dispatched without re-buffering.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace tfd::io {

/// Thrown by wire_reader on truncated or malformed input.
class wire_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// Thrown by read_section when a payload fails its checksum — a typed
/// subclass so callers can distinguish corruption from truncation
/// without matching message text.
class wire_checksum_error : public wire_error {
public:
    using wire_error::wire_error;
};

// ---- primitive encoders (little-endian fixed width, LEB128 varints) ----

inline void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
    out.push_back(v);
}

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int s = 0; s < 32; s += 8)
        out.push_back(static_cast<std::uint8_t>(v >> s));
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int s = 0; s < 64; s += 8)
        out.push_back(static_cast<std::uint8_t>(v >> s));
}

inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

/// Map signed to unsigned so small-magnitude values stay short varints.
inline std::uint64_t zigzag(std::int64_t v) noexcept {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

inline std::int64_t unzigzag(std::uint64_t v) noexcept {
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// IEEE-754 bits moved bit-exactly through u64 (checkpoint/resume
/// depends on doubles surviving the round trip unchanged).
inline void put_f64(std::vector<std::uint8_t>& out, double v) {
    put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// FNV-1a 64-bit checksum.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept;

/// An owned byte buffer with typed append. Thin sugar over the put_*
/// primitives for snapshot-hook writers that build a payload piecemeal.
class wire_writer {
public:
    void u8(std::uint8_t v) { put_u8(buf_, v); }
    void u16(std::uint16_t v) { put_u16(buf_, v); }
    void u32(std::uint32_t v) { put_u32(buf_, v); }
    void u64(std::uint64_t v) { put_u64(buf_, v); }
    void varint(std::uint64_t v) { put_varint(buf_, v); }
    void svarint(std::int64_t v) { put_varint(buf_, zigzag(v)); }
    void f64(double v) { put_f64(buf_, v); }
    void bytes(std::span<const std::uint8_t> b) {
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    std::size_t size() const noexcept { return buf_.size(); }
    std::span<const std::uint8_t> data() const noexcept { return buf_; }
    std::vector<std::uint8_t> take() noexcept { return std::move(buf_); }

private:
    std::vector<std::uint8_t> buf_;
};

/// Bounds-checked cursor over a byte span. Every accessor throws
/// wire_error on underrun; nothing is copied (bytes() returns subspans
/// of the input). `context` names the boundary in error messages so a
/// truncated codec frame and a truncated snapshot read differently.
class wire_reader {
public:
    explicit wire_reader(std::span<const std::uint8_t> bytes,
                         const char* context = "wire")
        : p_(bytes.data()), end_(bytes.data() + bytes.size()),
          context_(context) {}

    std::uint8_t u8() {
        need(1);
        return *p_++;
    }

    std::uint16_t u16() {
        need(2);
        const auto v = static_cast<std::uint16_t>(p_[0] | (p_[1] << 8));
        p_ += 2;
        return v;
    }

    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i) v = (v << 8) | p_[i];
        p_ += 4;
        return v;
    }

    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 7; i >= 0; --i) v = (v << 8) | p_[i];
        p_ += 8;
        return v;
    }

    std::uint64_t varint() {
        std::uint64_t v = 0;
        int shift = 0;
        for (;;) {
            if (p_ == end_ || shift > 63) fail("malformed varint");
            const std::uint8_t b = *p_++;
            v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
            if (!(b & 0x80)) return v;
            shift += 7;
        }
    }

    std::int64_t svarint() { return unzigzag(varint()); }

    double f64() { return std::bit_cast<double>(u64()); }

    /// The next n bytes as a subspan of the input (no copy).
    std::span<const std::uint8_t> bytes(std::size_t n) {
        need(n);
        const std::span<const std::uint8_t> out{p_, n};
        p_ += n;
        return out;
    }

    std::size_t remaining() const noexcept {
        return static_cast<std::size_t>(end_ - p_);
    }
    bool done() const noexcept { return p_ == end_; }

    /// Throw unless the reader consumed its input exactly (a payload
    /// with trailing bytes is as corrupt as a short one).
    void expect_end() const {
        if (p_ != end_) fail("trailing bytes");
    }

    [[noreturn]] void fail(const char* what) const {
        throw wire_error(std::string(context_) + ": " + what);
    }

private:
    void need(std::size_t n) const {
        if (static_cast<std::size_t>(end_ - p_) < n) fail("truncated read");
    }

    const std::uint8_t* p_;
    const std::uint8_t* end_;
    const char* context_;
};

// ---- checksummed + versioned section framing ----

/// Section header: u32 tag | u16 version | u16 reserved = 0 |
/// u64 payload_bytes | u64 fnv1a64(payload), then the payload.
inline constexpr std::size_t section_header_bytes = 24;

/// One parsed section; `payload` aliases the input buffer.
struct section_view {
    std::uint32_t tag = 0;
    std::uint16_t version = 0;
    std::span<const std::uint8_t> payload;
};

/// Append one framed section to `out`.
void write_section(std::vector<std::uint8_t>& out, std::uint32_t tag,
                   std::uint16_t version,
                   std::span<const std::uint8_t> payload);

/// Read one framed section, verifying length and checksum. Throws
/// wire_error on truncation or checksum mismatch.
section_view read_section(wire_reader& r);

}  // namespace tfd::io
