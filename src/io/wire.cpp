#include "io/wire.h"

namespace tfd::io {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

void write_section(std::vector<std::uint8_t>& out, std::uint32_t tag,
                   std::uint16_t version,
                   std::span<const std::uint8_t> payload) {
    put_u32(out, tag);
    put_u16(out, version);
    put_u16(out, 0);  // reserved
    put_u64(out, payload.size());
    put_u64(out, fnv1a64(payload));
    out.insert(out.end(), payload.begin(), payload.end());
}

section_view read_section(wire_reader& r) {
    section_view s;
    s.tag = r.u32();
    s.version = r.u16();
    (void)r.u16();  // reserved
    const std::uint64_t len = r.u64();
    const std::uint64_t sum = r.u64();
    if (len > r.remaining()) r.fail("truncated section payload");
    s.payload = r.bytes(static_cast<std::size_t>(len));
    if (fnv1a64(s.payload) != sum)
        throw wire_checksum_error("wire: section checksum mismatch");
    return s;
}

}  // namespace tfd::io
