// tfd::io — the versioned snapshot container.
//
// A snapshot is one self-describing file holding the full serialized
// state of a stateful subsystem (the stream checkpoint is the first
// client): a fixed header, then a counted sequence of checksummed,
// individually versioned sections (io/wire.h framing).
//
//   header  : u32 magic "TFSS" | u16 format_version = 1 | u16 flags = 0
//             u64 config_fingerprint | u32 section_count
//             u64 fnv1a64(previous 20 header bytes)
//   section : u32 tag | u16 version | u16 reserved | u64 payload_bytes
//             u64 fnv1a64(payload) | payload          (x section_count)
//
// Contracts:
//
//   * Atomicity — save_file() writes to `<path>.tmp` in the same
//     directory and renames over the target, so a crash mid-write
//     leaves either the old snapshot or none, never a torn file.
//   * All-or-nothing restore — snapshot_reader validates the header,
//     the section count, every section's bounds and every section's
//     checksum up front, before a caller can read one payload byte. A
//     corrupt snapshot therefore fails before any state is touched;
//     there is no partial restore to roll back.
//   * Loud failure, distinct causes — every rejection throws
//     snapshot_error with a machine-readable snapshot_errc: truncation,
//     bad magic, an unsupported format version, a section checksum
//     mismatch, and a config-fingerprint mismatch are distinguishable
//     (tests/io/snapshot_test.cpp pins each).
//   * Version-compat policy — format_version guards the container
//     layout; each section carries its own version so one subsystem can
//     evolve its payload without invalidating the others. Readers must
//     reject versions above what they know (no silent best-effort
//     decode) and may accept older ones they explicitly support.
//   * The config fingerprint is the caller's hash of every knob that
//     changes serialized-state semantics (shard count, bin width,
//     detector options...). A snapshot taken under one config must
//     never be restored under another — resumed state would be
//     silently wrong rather than loudly incompatible.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "io/wire.h"

namespace tfd::io {

class fault_injector;  // io/fault.h — optional test seam for save_file

inline constexpr std::uint32_t snapshot_magic = 0x53534654u;  // "TFSS"
inline constexpr std::uint16_t snapshot_format_version = 1;

/// Why a snapshot was rejected (one test per value).
enum class snapshot_errc {
    truncated,             ///< file shorter than its own framing claims
    bad_magic,             ///< not a snapshot file
    unsupported_version,   ///< container format newer than this reader
    checksum_mismatch,     ///< a section's payload failed its checksum
    fingerprint_mismatch,  ///< snapshot taken under a different config
    missing_section,       ///< a required section tag is absent
    malformed,             ///< framing inconsistent (counts, bounds)
    io_failure,            ///< the filesystem said no
};

const char* to_string(snapshot_errc c) noexcept;

/// Carries the rejection cause; what() includes to_string(code).
class snapshot_error : public std::runtime_error {
public:
    snapshot_error(snapshot_errc code, const std::string& detail);
    snapshot_errc code() const noexcept { return code_; }

private:
    snapshot_errc code_;
};

/// Accumulates sections, then serializes (or atomically writes) the
/// container.
class snapshot_writer {
public:
    explicit snapshot_writer(std::uint64_t config_fingerprint)
        : fingerprint_(config_fingerprint) {}

    /// Append one section (payload copied).
    void add_section(std::uint32_t tag, std::uint16_t version,
                     std::span<const std::uint8_t> payload);

    /// Append one section, taking the payload buffer without copying
    /// (pair with wire_writer::take() for large sections).
    void add_section(std::uint32_t tag, std::uint16_t version,
                     std::vector<std::uint8_t>&& payload);

    /// The serialized container.
    std::vector<std::uint8_t> serialize() const;

    /// Atomic save: serialize to `<path>.tmp`, flush, rename onto
    /// `path`. Throws snapshot_error{io_failure} on any filesystem
    /// error (the temp file is removed best-effort).
    ///
    /// `faults`, when non-null, is consulted once per call with
    /// `attempt` (fault_site::write_failure): a firing decision makes
    /// the save fail exactly like a transient EIO — temp file cleaned
    /// up, snapshot_error{io_failure} thrown, target untouched — so the
    /// checkpoint retry/backoff path is testable without a faulty disk.
    void save_file(const std::string& path,
                   fault_injector* faults = nullptr,
                   std::uint64_t attempt = 0) const;

private:
    struct section {
        std::uint32_t tag;
        std::uint16_t version;
        std::vector<std::uint8_t> payload;
    };

    std::uint64_t fingerprint_;
    std::vector<section> sections_;
};

/// Validates an entire container up front (header, fingerprint, every
/// section checksum), then hands out per-section readers. The byte
/// buffer is owned so section payload spans stay valid for the
/// reader's lifetime.
class snapshot_reader {
public:
    /// Validate `bytes` as a snapshot taken under the config hashing to
    /// `expected_fingerprint`. Throws snapshot_error (see snapshot_errc)
    /// on any inconsistency; a constructed reader is fully verified.
    snapshot_reader(std::vector<std::uint8_t> bytes,
                    std::uint64_t expected_fingerprint);

    /// Read + validate a snapshot file.
    static snapshot_reader load_file(const std::string& path,
                                     std::uint64_t expected_fingerprint);

    std::size_t section_count() const noexcept { return sections_.size(); }
    bool has_section(std::uint32_t tag) const noexcept;

    /// Version of the section with `tag`; throws
    /// snapshot_error{missing_section} if absent.
    std::uint16_t section_version(std::uint32_t tag) const;

    /// A wire_reader over the section's (already checksum-verified)
    /// payload; throws snapshot_error{missing_section} if absent.
    wire_reader section(std::uint32_t tag) const;

private:
    const section_view& find(std::uint32_t tag) const;

    std::vector<std::uint8_t> bytes_;
    std::vector<section_view> sections_;  ///< payloads alias bytes_
};

}  // namespace tfd::io
